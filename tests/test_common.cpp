/**
 * @file
 * Tests for the common utilities: RNG determinism and distributions,
 * CLI parsing, table formatting and descriptive statistics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"

namespace pimhe {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next64();
        EXPECT_EQ(va, b.next64());
    }
    // Different seeds diverge immediately with overwhelming odds.
    Rng a2(42);
    EXPECT_NE(a2.next64(), c.next64());
}

TEST(Rng, UniformRespectsBound)
{
    Rng rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 3ull, 17ull,
                                      1000000007ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniform(bound), bound) << "bound " << bound;
    }
}

TEST(Rng, UniformCoversSmallRangeCompletely)
{
    Rng rng(11);
    std::array<int, 5> seen{};
    for (int i = 0; i < 1000; ++i)
        seen[rng.uniform(5)]++;
    for (int s : seen)
        EXPECT_GT(s, 100) << "each bucket should appear ~200 times";
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(13);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo = hit_lo || v == -3;
        hit_hi = hit_hi || v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, TernaryValues)
{
    Rng rng(17);
    std::array<int, 3> seen{};
    for (int i = 0; i < 3000; ++i) {
        const int t = rng.ternary();
        ASSERT_GE(t, -1);
        ASSERT_LE(t, 1);
        seen[t + 1]++;
    }
    for (int s : seen)
        EXPECT_GT(s, 700);
}

TEST(Rng, CenteredBinomialBoundsAndSymmetry)
{
    Rng rng(19);
    const int eta = 6;
    double sum = 0;
    for (int i = 0; i < 5000; ++i) {
        const int v = rng.centeredBinomial(eta);
        ASSERT_GE(v, -eta);
        ASSERT_LE(v, eta);
        sum += v;
    }
    EXPECT_NEAR(sum / 5000.0, 0.0, 0.2) << "mean should be ~0";
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng b = a.split();
    EXPECT_NE(a.next64(), b.next64());
}

TEST(Rng, UniformVectorLengthAndBound)
{
    Rng rng(29);
    const auto v = rng.uniformVector(64, 100);
    ASSERT_EQ(v.size(), 64u);
    for (const auto x : v)
        EXPECT_LT(x, 100u);
}

TEST(Cli, ParsesAllForms)
{
    const char *argv[] = {"prog",       "positional", "--alpha=3",
                          "--beta",     "7",          "--flag"};
    CliArgs args(6, const_cast<char **>(argv),
                 {"alpha", "beta", "flag"});
    EXPECT_EQ(args.getInt("alpha", 0), 3);
    EXPECT_EQ(args.getInt("beta", 0), 7);
    EXPECT_TRUE(args.getBool("flag", false));
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.getInt("missing", 42), 42);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Cli, SpaceFormConsumesNextNonFlagToken)
{
    // Documented behaviour of the "--name value" form: a bare switch
    // followed by a positional swallows it as the value; use
    // "--name=value" when mixing switches and positionals.
    const char *argv[] = {"prog", "--flag", "positional"};
    CliArgs args(3, const_cast<char **>(argv), {"flag"});
    EXPECT_EQ(args.getString("flag", ""), "positional");
    EXPECT_TRUE(args.positional().empty());
}

TEST(Cli, TypedAccessors)
{
    const char *argv[] = {"prog", "--x=2.5", "--name=foo", "--b=yes"};
    CliArgs args(4, const_cast<char **>(argv), {"x", "name", "b"});
    EXPECT_DOUBLE_EQ(args.getDouble("x", 0), 2.5);
    EXPECT_EQ(args.getString("name", ""), "foo");
    EXPECT_TRUE(args.getBool("b", false));
}

TEST(Cli, UnknownFlagDies)
{
    const char *argv[] = {"prog", "--typo=1"};
    EXPECT_DEATH(CliArgs(2, const_cast<char **>(argv), {"ok"}),
                 "unknown flag");
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "23456"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    const auto out = os.str();
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
    // All lines after padding share the same column start for col 2.
    const auto p1 = out.find("value");
    const auto line1_start = out.rfind('\n', p1);
    (void)line1_start;
    EXPECT_NE(p1, std::string::npos);
}

TEST(Table, RowWidthMismatchDies)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Table, Formatting)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::fmtSpeedup(12.34), "12.3x");
    EXPECT_EQ(Table::fmtSpeedup(0.5), "0.50x");
}

TEST(Stats, DescriptiveStatistics)
{
    const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(variance(xs), 4.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
    const std::vector<double> gs = {1, 100};
    EXPECT_NEAR(geomean(gs), 10.0, 1e-9);
}

TEST(Stats, EmptySampleDies)
{
    const std::vector<double> empty;
    EXPECT_DEATH(mean(empty), "empty sample");
    EXPECT_DEATH(geomean(empty), "empty");
}

TEST(Stats, GeomeanRequiresPositive)
{
    const std::vector<double> xs = {1.0, -2.0};
    EXPECT_DEATH(geomean(xs), "positive");
}

TEST(Percentile, NearestRankOnKnownSample)
{
    // Classic nearest-rank example: 5 samples, p30 -> 2nd value.
    const std::vector<double> xs = {15, 20, 35, 40, 50};
    EXPECT_DOUBLE_EQ(percentile(xs, 30), 20.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 40), 20.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 35.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
    // Any p <= 100/n selects the minimum.
    EXPECT_DOUBLE_EQ(percentile(xs, 1), 15.0);
}

TEST(Percentile, ShorthandsMatchPercentile)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(p50(xs), 50.0);
    EXPECT_DOUBLE_EQ(p95(xs), 95.0);
    EXPECT_DOUBLE_EQ(p99(xs), 99.0);
    EXPECT_DOUBLE_EQ(p50(xs), percentile(xs, 50));
}

TEST(Percentile, SingleSampleIsEveryPercentile)
{
    const std::vector<double> xs = {7.5};
    EXPECT_DOUBLE_EQ(percentile(xs, 1), 7.5);
    EXPECT_DOUBLE_EQ(p50(xs), 7.5);
    EXPECT_DOUBLE_EQ(p99(xs), 7.5);
}

TEST(Percentile, RejectsEmptyAndOutOfRange)
{
    const std::vector<double> empty;
    EXPECT_DEATH(percentile(empty, 50), "empty");
    const std::vector<double> xs = {1, 2, 3};
    EXPECT_DEATH(percentile(xs, 0), "out of");
    EXPECT_DEATH(percentile(xs, 101), "out of");
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    // Burn a little CPU deterministically.
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i)
        x = x + i * 0.5;
    EXPECT_GE(t.elapsedSeconds(), 0.0);
    EXPECT_GE(t.elapsedMs(), 0.0);
    const double before = t.elapsedSeconds();
    t.reset();
    EXPECT_LE(t.elapsedSeconds(), before + 1.0);
}

} // namespace
} // namespace pimhe

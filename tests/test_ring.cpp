/**
 * @file
 * Tests for the polynomial quotient ring R_q and its samplers.
 */

#include <gtest/gtest.h>

#include "bfv/params.h"
#include "poly/convolver.h"
#include "poly/ring.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::kSeed;

template <std::size_t N>
RingContext<N>
makeRing(std::size_t n = 16)
{
    return RingContext<N>(n, standardParams<N>().q);
}

TEST(Ring, RejectsNonPowerOfTwoDegree)
{
    EXPECT_DEATH(RingContext<4>(12, standardParams<4>().q),
                 "power of two");
}

TEST(Ring, AddSubNegateIdentities)
{
    auto ring = makeRing<4>();
    Rng rng(kSeed);
    const auto a = ring.sampleUniform(rng);
    const auto b = ring.sampleUniform(rng);
    EXPECT_EQ(ring.sub(ring.add(a, b), b), a);
    EXPECT_TRUE(ring.add(a, ring.negate(a)).isZero());
    EXPECT_EQ(ring.negate(ring.negate(a)), a);
    const Polynomial<4> zero(ring.degree());
    EXPECT_EQ(ring.add(a, zero), a);
}

TEST(Ring, SizeMismatchDies)
{
    auto ring = makeRing<4>();
    Rng rng(kSeed);
    const auto a = ring.sampleUniform(rng);
    Polynomial<4> wrong(8);
    EXPECT_DEATH(ring.add(a, wrong), "does not match ring degree");
}

TEST(Ring, ScalarMulMatchesRepeatedAdd)
{
    auto ring = makeRing<2>();
    Rng rng(kSeed + 1);
    const auto a = ring.sampleUniform(rng);
    const auto three = ring.scalarMul(a, U64(3ULL));
    EXPECT_EQ(three, ring.add(ring.add(a, a), a));
}

TEST(Ring, MulByConstantOne)
{
    auto ring = makeRing<4>();
    Rng rng(kSeed + 2);
    const auto a = ring.sampleUniform(rng);
    Polynomial<4> one(ring.degree());
    one[0] = U128(1ULL);
    EXPECT_EQ(ring.mulSchoolbook(a, one), a);
}

TEST(Ring, MulByXShiftsNegacyclically)
{
    auto ring = makeRing<4>();
    Rng rng(kSeed + 3);
    const auto a = ring.sampleUniform(rng);
    Polynomial<4> x(ring.degree());
    x[1] = U128(1ULL);
    const auto shifted = ring.mulSchoolbook(a, x);
    for (std::size_t i = 1; i < ring.degree(); ++i)
        EXPECT_EQ(shifted[i], a[i - 1]);
    // x^n == -1: the top coefficient wraps with negation.
    EXPECT_EQ(shifted[0], ring.reducer().negMod(a[ring.degree() - 1]));
}

TEST(Ring, MulByXToTheNIsNegation)
{
    auto ring = makeRing<2>(8);
    Rng rng(kSeed + 4);
    const auto a = ring.sampleUniform(rng);
    Polynomial<2> x(8);
    x[1] = U64(1ULL);
    auto cur = a;
    for (int i = 0; i < 8; ++i)
        cur = ring.mulSchoolbook(cur, x);
    EXPECT_EQ(cur, ring.negate(a));
}

template <typename T>
class RingWidths : public ::testing::Test
{
};

using RingTypes = ::testing::Types<WideInt<1>, WideInt<2>, WideInt<4>>;
TYPED_TEST_SUITE(RingWidths, RingTypes);

TYPED_TEST(RingWidths, MulCommutesAndDistributes)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    auto ring = makeRing<N>();
    Rng rng(kSeed + N);
    for (int it = 0; it < 10; ++it) {
        const auto a = ring.sampleUniform(rng);
        const auto b = ring.sampleUniform(rng);
        const auto c = ring.sampleUniform(rng);
        EXPECT_EQ(ring.mulSchoolbook(a, b), ring.mulSchoolbook(b, a));
        EXPECT_EQ(ring.mulSchoolbook(a, ring.add(b, c)),
                  ring.add(ring.mulSchoolbook(a, b),
                           ring.mulSchoolbook(a, c)));
    }
}

TYPED_TEST(RingWidths, SamplersProduceReducedCoefficients)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    auto ring = makeRing<N>(64);
    Rng rng(kSeed + 10 + N);
    const auto u = ring.sampleUniform(rng);
    for (std::size_t i = 0; i < u.size(); ++i)
        EXPECT_LT(u[i], ring.modulus());

    const auto t = ring.sampleTernary(rng);
    for (std::size_t i = 0; i < t.size(); ++i) {
        const auto [mag, neg] = ring.toCentered(t[i]);
        (void)neg;
        EXPECT_LE(mag, WideInt<N>(1ULL)) << "ternary out of range";
    }

    const auto e = ring.sampleNoise(rng, 5);
    for (std::size_t i = 0; i < e.size(); ++i) {
        const auto [mag, neg] = ring.toCentered(e[i]);
        (void)neg;
        EXPECT_LE(mag, WideInt<N>(5ULL)) << "noise beyond eta";
    }
}

TEST(Ring, CenteredConversionRoundTrip)
{
    auto ring = makeRing<4>();
    for (std::int64_t v : {0L, 1L, -1L, 5L, -5L, 1000L, -1000L}) {
        const auto c = ring.centeredToModQ(v);
        const auto [mag, neg] = ring.toCentered(c);
        const std::int64_t back =
            neg ? -static_cast<std::int64_t>(mag.toUint64())
                : static_cast<std::int64_t>(mag.toUint64());
        EXPECT_EQ(back, v);
    }
}

TEST(Ring, UniformSamplingCoversRange)
{
    // Statistical smoke check: with 27-bit q the top bits should see
    // both halves of the range.
    auto ring = RingContext<1>(256, standardParams<1>().q);
    Rng rng(kSeed + 20);
    const auto u = ring.sampleUniform(rng);
    const U32 half = ring.modulus().shr(1);
    int above = 0;
    for (std::size_t i = 0; i < u.size(); ++i)
        if (u[i] > half)
            ++above;
    EXPECT_GT(above, 64);
    EXPECT_LT(above, 192);
}

// ----- convolver strategies -----

TYPED_TEST(RingWidths, SchoolbookConvolverMatchesRingProduct)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    auto ring = makeRing<N>();
    const SchoolbookConvolver<N> conv(ring);
    Rng rng(kSeed + 40 + N);
    const auto a = ring.sampleUniform(rng);
    const auto b = ring.sampleUniform(rng);
    const auto centered = conv.convolveCentered(a, b);
    // Reducing the exact signed coefficients mod q must equal the
    // mod-q schoolbook product.
    const auto expect = ring.mulSchoolbook(a, b);
    const U256 q = ring.modulus().template convert<8>();
    for (std::size_t i = 0; i < ring.degree(); ++i) {
        const bool neg = signed256::isNegative(centered[i]);
        const U256 mag = signed256::magnitude(centered[i]);
        const U256 r = mod(mag, q);
        WideInt<N> val = r.convert<N>();
        if (neg)
            val = ring.reducer().negMod(val);
        EXPECT_EQ(val, expect[i]) << "coeff " << i;
    }
}

TEST(Signed256, Helpers)
{
    const U256 five(5ULL);
    const U256 minus_five = U256() - five;
    EXPECT_FALSE(signed256::isNegative(five));
    EXPECT_TRUE(signed256::isNegative(minus_five));
    EXPECT_EQ(signed256::magnitude(minus_five), five);
    EXPECT_EQ(signed256::fromSignMagnitude(five, true), minus_five);
    EXPECT_EQ(signed256::fromSignMagnitude(five, false), five);
    EXPECT_FALSE(signed256::isNegative(U256()));
}

} // namespace
} // namespace pimhe

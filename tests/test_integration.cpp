/**
 * @file
 * Cross-module integration tests: engine equivalence, mixed pipelines
 * and the deployment flow the paper describes (client encrypts, PIM
 * server computes, client decrypts).
 */

#include <gtest/gtest.h>

#include "baselines/engines.h"
#include "workloads/statistics.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::BfvHarness;
using pimhe::testing::kSeed;

/**
 * The same sequence of homomorphic operations through all three
 * functional engines must produce bit-identical ciphertexts.
 */
template <std::size_t N>
void
engineEquivalenceScenario()
{
    pim::SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    cfg.numDpus = 1;

    std::vector<Ciphertext<N>> results;
    for (const auto kind : {baselines::EngineKind::CpuSchoolbook,
                            baselines::EngineKind::CpuSealLike,
                            baselines::EngineKind::PimSystem}) {
        BfvHarness<N> h(16, kSeed + 42);
        h.ctx.setConvolver(
            baselines::makeConvolver<N>(kind, h.ctx.ring(), cfg));
        const auto rlk = h.keygen.makeRelinKey();
        // (3 * 4 + 5) * 2 with a relinearisation in the middle.
        auto ct = h.eval.multiplyRelin(h.encryptScalar(3),
                                       h.encryptScalar(4), rlk);
        ct = h.eval.add(ct, h.encryptScalar(5));
        ct = h.eval.multiplyRelin(ct, h.encryptScalar(2), rlk);
        EXPECT_EQ(h.decryptScalar(ct), (3 * 4 + 5) * 2 % h.params.t);
        results.push_back(ct);
    }
    for (std::size_t e = 1; e < results.size(); ++e) {
        ASSERT_EQ(results[e].size(), results[0].size());
        for (std::size_t c = 0; c < results[0].size(); ++c)
            EXPECT_TRUE(results[e][c] == results[0][c])
                << "engine " << e << " component " << c;
    }
}

TEST(Integration, EngineEquivalence64Bit)
{
    engineEquivalenceScenario<2>();
}

TEST(Integration, EngineEquivalence128Bit)
{
    engineEquivalenceScenario<4>();
}

TEST(Integration, ClientServerDeploymentFlow)
{
    // The paper's deployment: keygen/encrypt/decrypt client-side,
    // computation on the PIM server, only ciphertexts cross the wire.
    BfvHarness<4> h(16);
    pim::SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    cfg.numDpus = 4;
    PimHeSystem<4> server(h.ctx, cfg, 4, 12);

    // Clients upload readings.
    const std::vector<std::uint64_t> readings = {17, 4, 9, 25, 13,
                                                 8, 21, 3};
    std::vector<Ciphertext<4>> uploads;
    for (const auto r : readings)
        uploads.push_back(h.encryptScalar(r));

    // Server: encrypted total via PIM reduction.
    const auto total_ct = server.reduceCiphertexts(uploads);

    // Client: decrypt and verify against the plaintext truth.
    std::uint64_t expect = 0;
    for (const auto r : readings)
        expect += r;
    EXPECT_EQ(h.decryptScalar(total_ct), expect % h.params.t);
    EXPECT_GT(server.totalModeledMs(), 0.0);
}

TEST(Integration, MixedPimAddAndMultiplyPipeline)
{
    // Sum of squares on the PIM path end to end:
    // sum_i x_i^2 for x = {2, 3, 4} => 29.
    BfvHarness<4> h(16);
    pim::SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    cfg.numDpus = 2;
    h.ctx.setConvolver(std::make_unique<PimConvolver<4>>(
        h.ctx.ring(), cfg, 12));
    PimHeSystem<4> server(h.ctx, cfg, 2, 12);

    std::vector<Ciphertext<4>> squares;
    for (const std::uint64_t x : {2ull, 3ull, 4ull})
        squares.push_back(h.eval.square(h.encryptScalar(x)));
    const auto total = server.reduceCiphertexts(squares);
    EXPECT_EQ(h.decryptScalar(total), 29u);
}

TEST(Integration, WorkloadsAgreeAcrossEngines)
{
    const std::vector<std::uint64_t> xs = {3, 9, 15, 21};
    std::vector<double> variances;
    pim::SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    cfg.numDpus = 1;
    for (const auto kind : {baselines::EngineKind::CpuSchoolbook,
                            baselines::EngineKind::CpuSealLike,
                            baselines::EngineKind::PimSystem}) {
        BfvHarness<4> h(16, kSeed + 7);
        h.ctx.setConvolver(
            baselines::makeConvolver<4>(kind, h.ctx.ring(), cfg));
        workloads::EncryptedVariance<4> var(h.ctx, h.enc, h.dec);
        variances.push_back(var.run(xs));
    }
    EXPECT_DOUBLE_EQ(variances[0], 45.0);
    EXPECT_DOUBLE_EQ(variances[1], 45.0);
    EXPECT_DOUBLE_EQ(variances[2], 45.0);
}

TEST(Integration, NoiseSurvivesRealisticAggregation)
{
    // 64 users, one square each plus the value reduction — the
    // variance workload's noise profile at reduced degree, checked
    // against the noise budget API.
    BfvHarness<4> h(32);
    workloads::EncryptedVariance<4> var(h.ctx, h.enc, h.dec);
    std::vector<std::uint64_t> xs;
    Rng rng(kSeed + 3);
    for (int i = 0; i < 64; ++i)
        xs.push_back(rng.uniform(16));
    double expect_mean = 0, expect_sq = 0;
    for (const auto x : xs) {
        expect_mean += static_cast<double>(x);
        expect_sq += static_cast<double>(x * x);
    }
    expect_mean /= 64.0;
    expect_sq /= 64.0;
    EXPECT_DOUBLE_EQ(var.run(xs),
                     expect_sq - expect_mean * expect_mean);
}

TEST(Integration, FlattenRoundTripThroughMram)
{
    // Ciphertexts that cross the DPU boundary twice (add then mul
    // coefficientwise) keep exact coefficients.
    BfvHarness<2> h(16);
    pim::SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    cfg.numDpus = 3;
    PimHeSystem<2> server(h.ctx, cfg, 3, 12);
    std::vector<Ciphertext<2>> as = {h.encryptScalar(7),
                                     h.encryptScalar(8)};
    std::vector<Ciphertext<2>> zeros;
    Plaintext zero_pt(h.params.n);
    zeros.push_back(h.enc.encrypt(zero_pt));
    zeros.push_back(h.enc.encrypt(zero_pt));
    const auto sums = server.addCiphertextVectors(as, zeros);
    EXPECT_EQ(h.decryptScalar(sums[0]), 7u);
    EXPECT_EQ(h.decryptScalar(sums[1]), 8u);
}

} // namespace
} // namespace pimhe

/**
 * @file
 * Shared fixtures and helpers for the PIM-HE test suite.
 */

#ifndef PIMHE_TESTS_TEST_UTIL_H
#define PIMHE_TESTS_TEST_UTIL_H

#include <gtest/gtest.h>

#include "bfv/context.h"
#include "bfv/encryptor.h"
#include "bfv/evaluator.h"
#include "bfv/keys.h"
#include "bfv/params.h"
#include "common/rng.h"

namespace pimhe {
namespace testing {

/** Deterministic seed base so failures reproduce. */
constexpr std::uint64_t kSeed = 0xC0FFEE5EED;

/** Random WideInt with all limbs uniform. */
template <std::size_t N>
WideInt<N>
randomWide(Rng &rng)
{
    WideInt<N> w;
    for (std::size_t i = 0; i < N; ++i)
        w.setLimb(i, rng.next32());
    return w;
}

/** Random WideInt reduced below the given modulus. */
template <std::size_t N>
WideInt<N>
randomBelow(Rng &rng, const WideInt<N> &q)
{
    return mod(randomWide<N>(rng), q);
}

/**
 * Everything needed to run BFV in a test, at a reduced ring degree so
 * schoolbook paths stay fast.
 */
template <std::size_t N>
struct BfvHarness
{
    BfvParams<N> params;
    BfvContext<N> ctx;
    Rng rng;
    KeyGenerator<N> keygen;
    PublicKey<N> pk;
    Encryptor<N> enc;
    Decryptor<N> dec;
    Evaluator<N> eval;
    IntegerEncoder encoder;

    explicit
    BfvHarness(std::size_t degree = 32, std::uint64_t seed = kSeed)
        : params(standardParams<N>().withDegree(degree)),
          ctx(params), rng(seed), keygen(ctx, rng),
          pk(keygen.makePublicKey()), enc(ctx, pk, rng),
          dec(ctx, keygen.secretKey()), eval(ctx),
          encoder(params.t, params.n)
    {}

    Ciphertext<N>
    encryptScalar(std::uint64_t v)
    {
        return enc.encrypt(encoder.encodeScalar(v));
    }

    std::uint64_t
    decryptScalar(const Ciphertext<N> &ct)
    {
        return encoder.decodeScalar(dec.decrypt(ct));
    }
};

} // namespace testing
} // namespace pimhe

#endif // PIMHE_TESTS_TEST_UTIL_H

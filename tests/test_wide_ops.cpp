/**
 * @file
 * DPU wide-integer helpers vs the WideInt host reference, plus the
 * shape-determinism property the analytic cost model relies on.
 */

#include <gtest/gtest.h>

#include "bfv/params.h"
#include "modular/barrett.h"
#include "pim/wide_ops.h"
#include "test_util.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using pimhe::testing::kSeed;
using pimhe::testing::randomBelow;
using pimhe::testing::randomWide;

struct OpsHarness
{
    DpuConfig cfg;
    Wram wram{cfg.wramBytes};
    Mram mram{cfg.mramBytes};
    TaskletStats stats;
    TaskletCtx ctx{0, 1, cfg, wram, mram, stats};
};

template <std::size_t L>
void
toLimbs(const WideInt<L> &w, std::uint32_t *out)
{
    for (std::size_t i = 0; i < L; ++i)
        out[i] = w.limb(i);
}

template <std::size_t L>
WideInt<L>
fromLimbs(const std::uint32_t *in)
{
    WideInt<L> w;
    for (std::size_t i = 0; i < L; ++i)
        w.setLimb(i, in[i]);
    return w;
}

/** Pseudo-Mersenne (k, c) of the standard modulus for width L. */
template <std::size_t L>
std::pair<std::size_t, std::uint32_t>
pmShape()
{
    const auto q = standardParams<L>().q;
    const std::size_t k = q.bitLength();
    const auto c = WideInt<L>::oneShl(k) - q;
    return {k, static_cast<std::uint32_t>(c.toUint64())};
}

template <typename T>
class WideOpsWidths : public ::testing::Test
{
};

using OpWidths = ::testing::Types<WideInt<1>, WideInt<2>, WideInt<4>>;
TYPED_TEST_SUITE(WideOpsWidths, OpWidths);

TYPED_TEST(WideOpsWidths, WideAddMatchesReference)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    OpsHarness h;
    Rng rng(kSeed + L);
    for (int it = 0; it < 200; ++it) {
        const auto a = randomWide<L>(rng);
        const auto b = randomWide<L>(rng);
        std::uint32_t al[8], bl[8], out[8];
        toLimbs(a, al);
        toLimbs(b, bl);
        const auto carry = dpuWideAdd(h.ctx, al, bl, out, L);
        EXPECT_EQ(fromLimbs<L>(out), a + b);
        TypeParam copy = a;
        EXPECT_EQ(carry, copy.addInPlace(b));
    }
}

TYPED_TEST(WideOpsWidths, WideSubMatchesReference)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    OpsHarness h;
    Rng rng(kSeed + 2 * L);
    for (int it = 0; it < 200; ++it) {
        const auto a = randomWide<L>(rng);
        const auto b = randomWide<L>(rng);
        std::uint32_t al[8], bl[8], out[8];
        toLimbs(a, al);
        toLimbs(b, bl);
        const auto borrow = dpuWideSub(h.ctx, al, bl, out, L);
        EXPECT_EQ(fromLimbs<L>(out), a - b);
        EXPECT_EQ(borrow, a < b ? 1u : 0u);
    }
}

TYPED_TEST(WideOpsWidths, AddSubModQMatchBarrett)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    const auto q = standardParams<L>().q;
    const BarrettReducer<L> red(q);
    OpsHarness h;
    Rng rng(kSeed + 3 * L);
    std::uint32_t ql[8];
    toLimbs(q, ql);
    for (int it = 0; it < 200; ++it) {
        const auto a = randomBelow<L>(rng, q);
        const auto b = randomBelow<L>(rng, q);
        std::uint32_t al[8], bl[8], out[8];
        toLimbs(a, al);
        toLimbs(b, bl);
        dpuWideAddModQ(h.ctx, al, bl, ql, out, L);
        EXPECT_EQ(fromLimbs<L>(out), red.addMod(a, b)) << "iter " << it;
        dpuWideSubModQ(h.ctx, al, bl, ql, out, L);
        EXPECT_EQ(fromLimbs<L>(out), red.subMod(a, b)) << "iter " << it;
    }
}

TYPED_TEST(WideOpsWidths, KaratsubaMatchesMulFull)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    OpsHarness h;
    Rng rng(kSeed + 4 * L);
    for (int it = 0; it < 200; ++it) {
        const auto a = randomWide<L>(rng);
        const auto b = randomWide<L>(rng);
        std::uint32_t al[8], bl[8], out[16];
        toLimbs(a, al);
        toLimbs(b, bl);
        dpuWideMulKaratsuba(h.ctx, al, bl, out, L);
        EXPECT_EQ(fromLimbs<2 * L>(out), a.mulFull(b)) << "iter " << it;
    }
}

TYPED_TEST(WideOpsWidths, KaratsubaEdgeCases)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    OpsHarness h;
    const auto max = TypeParam::maxValue();
    for (const auto &[a, b] :
         {std::pair{TypeParam(), max}, std::pair{max, max},
          std::pair{TypeParam(1ULL), max},
          std::pair{TypeParam(1ULL), TypeParam(1ULL)}}) {
        std::uint32_t al[8], bl[8], out[16];
        toLimbs(a, al);
        toLimbs(b, bl);
        dpuWideMulKaratsuba(h.ctx, al, bl, out, L);
        EXPECT_EQ(fromLimbs<2 * L>(out), a.mulFull(b));
    }
}

TYPED_TEST(WideOpsWidths, MulModQMatchesBarrett)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    const auto q = standardParams<L>().q;
    const auto [k, c] = pmShape<L>();
    const BarrettReducer<L> red(q);
    OpsHarness h;
    Rng rng(kSeed + 5 * L);
    std::uint32_t ql[8];
    toLimbs(q, ql);
    for (int it = 0; it < 200; ++it) {
        const auto a = randomBelow<L>(rng, q);
        const auto b = randomBelow<L>(rng, q);
        std::uint32_t al[8], bl[8], out[8];
        toLimbs(a, al);
        toLimbs(b, bl);
        dpuWideMulModQ(h.ctx, al, bl, ql, k, c, out, L);
        EXPECT_EQ(fromLimbs<L>(out), red.mulMod(a, b)) << "iter " << it;
    }
}

TYPED_TEST(WideOpsWidths, MulModQEdgeValues)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    const auto q = standardParams<L>().q;
    const auto [k, c] = pmShape<L>();
    const BarrettReducer<L> red(q);
    OpsHarness h;
    std::uint32_t ql[8];
    toLimbs(q, ql);
    const auto qm1 = q - TypeParam(1ULL);
    for (const auto &[a, b] :
         {std::pair{TypeParam(), qm1}, std::pair{qm1, qm1},
          std::pair{TypeParam(1ULL), qm1}}) {
        std::uint32_t al[8], bl[8], out[8];
        toLimbs(a, al);
        toLimbs(b, bl);
        dpuWideMulModQ(h.ctx, al, bl, ql, k, c, out, L);
        EXPECT_EQ(fromLimbs<L>(out), red.mulMod(a, b));
    }
}

TYPED_TEST(WideOpsWidths, InstructionCountIsDataIndependent)
{
    // The analytic cost model requires branch-free kernels: the same
    // operation shape must cost the same instruction count for any
    // operand values.
    constexpr std::size_t L = TypeParam::numLimbs;
    const auto q = standardParams<L>().q;
    const auto [k, c] = pmShape<L>();
    std::uint32_t ql[8];
    toLimbs(q, ql);
    Rng rng(kSeed + 6 * L);
    std::uint64_t expected = 0;
    for (int it = 0; it < 50; ++it) {
        OpsHarness h;
        const auto a = randomBelow<L>(rng, q);
        const auto b = randomBelow<L>(rng, q);
        std::uint32_t al[8], bl[8], out[8];
        toLimbs(a, al);
        toLimbs(b, bl);
        dpuWideAddModQ(h.ctx, al, bl, ql, out, L);
        dpuWideMulModQ(h.ctx, al, bl, ql, k, c, out, L);
        if (it == 0)
            expected = h.stats.instructions;
        else
            ASSERT_EQ(h.stats.instructions, expected)
                << "data-dependent instruction count at iter " << it;
    }
}

TYPED_TEST(WideOpsWidths, MultiplicationCostGrowsWithWidth)
{
    // Key Takeaway 2 at the instruction level: wide multiplication is
    // expensive on gen1 hardware, and the native-multiplier ablation
    // removes most of that cost.
    constexpr std::size_t L = TypeParam::numLimbs;
    const auto q = standardParams<L>().q;
    const auto [k, c] = pmShape<L>();
    std::uint32_t ql[8], al[8], bl[8], out[8];
    toLimbs(q, ql);
    Rng rng(kSeed);
    toLimbs(randomBelow<L>(rng, q), al);
    toLimbs(randomBelow<L>(rng, q), bl);

    OpsHarness gen1;
    dpuWideMulModQ(gen1.ctx, al, bl, ql, k, c, out, L);
    const auto gen1_cost = gen1.stats.instructions;

    OpsHarness native;
    native.cfg.nativeMul32 = true;
    TaskletStats stats;
    TaskletCtx nctx(0, 1, native.cfg, native.wram, native.mram, stats);
    dpuWideMulModQ(nctx, al, bl, ql, k, c, out, L);
    EXPECT_LT(stats.instructions * 3, gen1_cost)
        << "native 32-bit multiply should cut cost by >3x";

    OpsHarness addh;
    dpuWideAddModQ(addh.ctx, al, bl, ql, out, L);
    EXPECT_LT(addh.stats.instructions * 10, gen1_cost)
        << "multiplication must dwarf addition on gen1";
}

TEST(WideOps, PseudoMersenneRejectsBadShapes)
{
    OpsHarness h;
    std::uint32_t x[8] = {};
    std::uint32_t q[4] = {1, 0, 0, 0};
    std::uint32_t out[4];
    EXPECT_DEATH(
        dpuPseudoMersenneReduce(h.ctx, x, 64, 5, q, out, 1),
        "k inconsistent");
    EXPECT_DEATH(
        dpuPseudoMersenneReduce(h.ctx, x, 20, 0xFFFF, q, out, 1),
        "fold constant too large");
}

} // namespace
} // namespace pimhe

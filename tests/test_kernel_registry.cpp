/**
 * @file
 * Footprint-coverage audit: every make*Kernel factory defined in
 * src/pimhe must have a row in the kernel registry (and therefore a
 * footprint builder with a parametric access model), and every
 * registered plan must actually carry that model. The factory list is
 * recovered from the sources themselves, so shipping a new kernel
 * without registering it fails this test rather than silently
 * shrinking prover coverage.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "pimhe/kernel_registry.h"

namespace pimhe {
namespace {

using namespace pimhe::pimhe_kernels;

/** All make*Kernel factory names defined in src/pimhe headers. */
std::set<std::string>
factoriesInSources()
{
    const std::filesystem::path dir =
        std::filesystem::path(PIMHE_SOURCE_DIR) / "src" / "pimhe";
    // A definition, not a call site: the factory name followed by its
    // parameter list on a line that starts a function (the headers
    // put the return type on the preceding line, so the name is at
    // column 0).
    const std::regex def(R"(^(make\w*Kernel)\s*\()");
    std::set<std::string> out;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".h")
            continue;
        std::ifstream f(entry.path());
        std::string line;
        while (std::getline(f, line)) {
            std::smatch m;
            if (std::regex_search(line, m, def))
                out.insert(m[1].str());
        }
    }
    return out;
}

TEST(KernelRegistry, EveryShippedFactoryIsRegistered)
{
    const auto in_sources = factoriesInSources();
    ASSERT_FALSE(in_sources.empty())
        << "no factories found under " << PIMHE_SOURCE_DIR
        << "/src/pimhe — source scan is broken";

    std::set<std::string> registered;
    for (const auto &family : kernelRegistry())
        registered.insert(family.factory);

    for (const auto &name : in_sources)
        EXPECT_TRUE(registered.count(name))
            << "factory " << name
            << " ships without a registry row: add it to "
               "kernel_registry.h with a footprint builder and a "
               "parametric access model";
    for (const auto &name : registered)
        EXPECT_TRUE(in_sources.count(name))
            << "registry row " << name
            << " has no factory in src/pimhe — stale entry?";
}

TEST(KernelRegistry, EveryPlanCarriesAnAccessModel)
{
    const pim::DpuConfig cfg;
    for (const auto &family : kernelRegistry()) {
        const auto plans = family.plans(cfg);
        EXPECT_FALSE(plans.empty())
            << family.factory << " produced no launch plans";
        for (const auto &plan : plans) {
            EXPECT_TRUE(
                static_cast<bool>(plan.footprint.taskletAccess))
                << family.factory << " [" << plan.params
                << "] footprint has no taskletAccess model — the "
                   "symbolic prover cannot cover it";
            EXPECT_FALSE(plan.footprint.kernel.empty())
                << family.factory;
            EXPECT_GE(plan.footprint.maxTasklets, 1u)
                << family.factory << " [" << plan.params << "]";
            EXPECT_FALSE(plan.footprint.mramRegions.empty())
                << family.factory << " [" << plan.params << "]";
        }
    }
}

TEST(KernelRegistry, EveryFamilyHasAFastPathOrAWaiver)
{
    for (const auto &family : kernelRegistry()) {
        const bool has_builder = static_cast<bool>(family.compiled);
        EXPECT_TRUE(has_builder || !family.fastWaiver.empty())
            << family.factory
            << " has neither a compiled-kernel builder nor an "
               "interpreter-only waiver: add a compiled* factory to "
               "fast_kernels.h or record why the family must stay on "
               "the interpreter";
        if (!has_builder)
            continue;
        const pim::CompiledKernel ck = family.compiled();
        EXPECT_TRUE(static_cast<bool>(ck.interpret))
            << family.factory << " compiled kernel has no interpreter "
                                 "body — shadow mode cannot check it";
        EXPECT_TRUE(static_cast<bool>(ck.fast) || !ck.waiver.empty())
            << family.factory
            << " compiled kernel carries neither a fast body nor a "
               "waiver";
        if (ck.fast) {
            EXPECT_FALSE(ck.outputs.empty())
                << family.factory
                << " fast path declares no semantic output regions — "
                   "shadow mode would compare nothing";
        }
    }
}

TEST(KernelRegistry, TitlesAndTagsAreDistinct)
{
    std::set<std::string> factories, titles;
    for (const auto &family : kernelRegistry()) {
        EXPECT_TRUE(factories.insert(family.factory).second)
            << "duplicate registry row " << family.factory;
        EXPECT_TRUE(titles.insert(family.title).second)
            << "duplicate registry title " << family.title;
    }
}

} // namespace
} // namespace pimhe

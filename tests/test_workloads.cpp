/**
 * @file
 * Functional correctness of the statistical workloads: encrypted
 * results must match the plaintext computation, through every engine.
 */

#include <gtest/gtest.h>

#include "baselines/engines.h"
#include "workloads/statistics.h"
#include "workloads/timing.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::BfvHarness;
using pimhe::testing::kSeed;
using namespace pimhe::workloads;

TEST(MeanWorkload, MatchesPlaintextMean)
{
    BfvHarness<4> h(16);
    EncryptedMean<4> mean(h.ctx, h.enc, h.dec);
    const std::vector<std::uint64_t> ages = {23, 45, 31, 60, 18, 27,
                                             52, 39};
    double expect = 0;
    for (const auto a : ages)
        expect += static_cast<double>(a);
    expect /= static_cast<double>(ages.size());
    EXPECT_DOUBLE_EQ(mean.run(ages), expect);
}

TEST(MeanWorkload, SingleUser)
{
    BfvHarness<4> h(16);
    EncryptedMean<4> mean(h.ctx, h.enc, h.dec);
    EXPECT_DOUBLE_EQ(mean.run({42}), 42.0);
}

TEST(MeanWorkload, ManyUsersStayWithinNoiseBudget)
{
    BfvHarness<2> h(16);
    EncryptedMean<2> mean(h.ctx, h.enc, h.dec);
    std::vector<std::uint64_t> values;
    Rng rng(kSeed);
    std::uint64_t total = 0;
    for (int i = 0; i < 120; ++i) {
        values.push_back(rng.uniform(2));
        total += values.back();
    }
    // Sum stays below t = 257, so the decoded mean must be exact.
    EXPECT_DOUBLE_EQ(mean.run(values),
                     static_cast<double>(total) / 120.0);
}

TEST(MeanWorkload, PimReductionPathMatchesHost)
{
    BfvHarness<4> h(16);
    EncryptedMean<4> mean(h.ctx, h.enc, h.dec);
    const std::vector<std::uint64_t> vals = {5, 9, 13, 2, 11};
    const auto cts = mean.encryptUsers(vals);

    pim::SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    cfg.numDpus = 3;
    PimHeSystem<4> pimsys(h.ctx, cfg, 3, 12);
    const auto pim_sum = pimsys.reduceCiphertexts(cts);
    const auto host_sum = mean.aggregate(cts);
    for (std::size_t c = 0; c < 2; ++c)
        EXPECT_TRUE(pim_sum[c] == host_sum[c]) << "component " << c;
    EXPECT_DOUBLE_EQ(mean.finish(pim_sum, vals.size()), 8.0);
}

TEST(VarianceWorkload, MatchesPlaintextVariance)
{
    BfvHarness<4> h(16);
    EncryptedVariance<4> var(h.ctx, h.enc, h.dec);
    const std::vector<std::uint64_t> xs = {4, 8, 6, 2};
    // mean 5, squares mean = (16+64+36+4)/4 = 30, var = 5.
    EXPECT_DOUBLE_EQ(var.run(xs), 5.0);
}

TEST(VarianceWorkload, ZeroForConstantData)
{
    BfvHarness<4> h(16);
    EncryptedVariance<4> var(h.ctx, h.enc, h.dec);
    EXPECT_DOUBLE_EQ(var.run({7, 7, 7, 7, 7}), 0.0);
}

TEST(VarianceWorkload, ThroughNttEngine)
{
    BfvHarness<4> h(16);
    h.ctx.setConvolver(
        std::make_unique<RnsNttConvolver<4>>(h.ctx.ring()));
    EncryptedVariance<4> var(h.ctx, h.enc, h.dec);
    EXPECT_DOUBLE_EQ(var.run({1, 3, 5, 7}), 5.0);
}

TEST(VarianceWorkload, ThroughPimEngine)
{
    BfvHarness<4> h(16);
    pim::SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    cfg.numDpus = 1;
    h.ctx.setConvolver(std::make_unique<PimConvolver<4>>(
        h.ctx.ring(), cfg, 12));
    EncryptedVariance<4> var(h.ctx, h.enc, h.dec);
    EXPECT_DOUBLE_EQ(var.run({10, 14, 10, 14}), 4.0);
}

TEST(LinregWorkload, RecoversExactLinearModel)
{
    BfvHarness<4> h(16);
    EncryptedLinearRegression<4> reg(h.ctx, h.enc, h.dec);
    // y = 3 + 2 x1 + 1 x2 + 4 x3, exact integer samples.
    std::vector<RegressionSample> samples;
    Rng rng(kSeed + 1);
    for (int i = 0; i < 12; ++i) {
        RegressionSample s;
        s.x = {rng.uniform(5), rng.uniform(5), rng.uniform(5)};
        s.y = 3 + 2 * s.x[0] + 1 * s.x[1] + 4 * s.x[2];
        samples.push_back(s);
    }
    const auto w = reg.run(samples);
    EXPECT_NEAR(w[0], 3.0, 1e-6);
    EXPECT_NEAR(w[1], 2.0, 1e-6);
    EXPECT_NEAR(w[2], 1.0, 1e-6);
    EXPECT_NEAR(w[3], 4.0, 1e-6);
}

TEST(LinregWorkload, ThroughNttEngine)
{
    BfvHarness<4> h(16);
    h.ctx.setConvolver(
        std::make_unique<RnsNttConvolver<4>>(h.ctx.ring()));
    EncryptedLinearRegression<4> reg(h.ctx, h.enc, h.dec);
    std::vector<RegressionSample> samples;
    Rng rng(kSeed + 2);
    for (int i = 0; i < 10; ++i) {
        RegressionSample s;
        s.x = {rng.uniform(4), rng.uniform(4), rng.uniform(4)};
        s.y = 1 + 5 * s.x[0] + 2 * s.x[2];
        samples.push_back(s);
    }
    const auto w = reg.run(samples);
    EXPECT_NEAR(w[0], 1.0, 1e-6);
    EXPECT_NEAR(w[1], 5.0, 1e-6);
    EXPECT_NEAR(w[2], 0.0, 1e-6);
    EXPECT_NEAR(w[3], 2.0, 1e-6);
}

TEST(LinregWorkload, RejectsEmptyAndRagged)
{
    BfvHarness<4> h(16);
    EncryptedLinearRegression<4> reg(h.ctx, h.enc, h.dec);
    std::vector<std::vector<Ciphertext<4>>> xs;
    std::vector<Ciphertext<4>> ys;
    EXPECT_DEATH(reg.aggregate(xs, ys), "inconsistent");
    xs.push_back({h.encryptScalar(1)});
    ys.push_back(h.encryptScalar(2));
    EXPECT_DEATH(reg.aggregate(xs, ys), "bias");
}

// ----- timing composition sanity -----

TEST(WorkloadTiming, ShapesAreMonotone)
{
    baselines::PlatformSuite suite;
    WorkloadShape small, big;
    small.users = 640;
    big.users = 2560;
    // CPU-like platforms scale with users.
    EXPECT_LT(meanTimeMs(suite.cpu(), small),
              meanTimeMs(suite.cpu(), big));
    EXPECT_LT(varianceTimeMs(suite.seal(), small),
              varianceTimeMs(suite.seal(), big));
    // Variance costs more than mean everywhere (it adds the squares).
    for (const auto *m : suite.all())
        EXPECT_GT(varianceTimeMs(*m, small), meanTimeMs(*m, small))
            << m->name();
    // More ciphertexts per user cost more in linreg.
    WorkloadShape lr32 = small, lr64 = small;
    lr32.ctsPerUser = 32;
    lr64.ctsPerUser = 64;
    for (const auto *m : suite.all())
        EXPECT_GT(linregTimeMs(*m, lr64), linregTimeMs(*m, lr32))
            << m->name();
}

} // namespace
} // namespace pimhe

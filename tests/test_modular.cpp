/**
 * @file
 * Tests for 64-bit modular helpers and the Barrett reducer.
 */

#include <gtest/gtest.h>

#include "bfv/params.h"
#include "modular/barrett.h"
#include "modular/mod64.h"
#include "modular/montgomery.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::kSeed;
using pimhe::testing::randomBelow;

TEST(Mod64, MulModMatchesInt128)
{
    Rng rng(kSeed);
    for (int it = 0; it < 500; ++it) {
        const std::uint64_t m = (rng.next64() >> 2) | 1;
        const std::uint64_t a = rng.uniform(m);
        const std::uint64_t b = rng.uniform(m);
        const auto expect = static_cast<std::uint64_t>(
            static_cast<unsigned __int128>(a) * b % m);
        EXPECT_EQ(mulMod64(a, b, m), expect);
    }
}

TEST(Mod64, AddSubMod)
{
    EXPECT_EQ(addMod64(5, 6, 7), 4u);
    EXPECT_EQ(addMod64(6, 6, 7), 5u);
    EXPECT_EQ(subMod64(2, 5, 7), 4u);
    EXPECT_EQ(subMod64(5, 2, 7), 3u);
    // Near the top of the 64-bit range (overflowing sum).
    const std::uint64_t m = ~0ULL - 58;
    EXPECT_EQ(addMod64(m - 1, m - 2, m), m - 3);
}

TEST(Mod64, PowModProperties)
{
    Rng rng(kSeed + 1);
    for (int it = 0; it < 50; ++it) {
        const std::uint64_t p = 1000003;
        const std::uint64_t a = 1 + rng.uniform(p - 1);
        // Fermat: a^(p-1) == 1 mod p for prime p.
        EXPECT_EQ(powMod64(a, p - 1, p), 1u);
        EXPECT_EQ(powMod64(a, 0, p), 1u);
        EXPECT_EQ(powMod64(a, 1, p), a);
    }
}

TEST(Mod64, InvMod)
{
    Rng rng(kSeed + 2);
    const std::uint64_t p = 18014398509404161ULL; // 54-bit prime
    for (int it = 0; it < 100; ++it) {
        const std::uint64_t a = 1 + rng.uniform(p - 1);
        const std::uint64_t inv = invMod64(a, p);
        EXPECT_EQ(mulMod64(a, inv, p), 1u);
    }
    EXPECT_DEATH(invMod64(6, 9), "not invertible");
}

TEST(Mod64, IsPrimeKnownValues)
{
    EXPECT_FALSE(isPrime64(0));
    EXPECT_FALSE(isPrime64(1));
    EXPECT_TRUE(isPrime64(2));
    EXPECT_TRUE(isPrime64(3));
    EXPECT_FALSE(isPrime64(4));
    EXPECT_TRUE(isPrime64(65537));
    EXPECT_FALSE(isPrime64(65536));
    // Carmichael numbers must be rejected.
    EXPECT_FALSE(isPrime64(561));
    EXPECT_FALSE(isPrime64(41041));
    EXPECT_FALSE(isPrime64(825265));
    // Large primes and neighbours.
    EXPECT_TRUE(isPrime64(18446744073709551557ULL));
    EXPECT_FALSE(isPrime64(18446744073709551555ULL));
    // The library's standard moduli.
    EXPECT_TRUE(isPrime64(134215681ULL));
    EXPECT_TRUE(isPrime64(18014398509404161ULL));
}

TEST(Mod64, StandardParamModuliAreNttFriendlyPrimes)
{
    // 27-bit: prime and 1 mod 2n with n = 1024.
    const auto p1 = standardParams<1>();
    EXPECT_TRUE(isPrime64(p1.q.toUint64()));
    EXPECT_EQ(p1.q.toUint64() % (2 * p1.n), 1u);
    EXPECT_EQ(p1.q.bitLength(), 27u);

    const auto p2 = standardParams<2>();
    EXPECT_TRUE(isPrime64(p2.q.toUint64()));
    EXPECT_EQ(p2.q.toUint64() % (2 * p2.n), 1u);
    EXPECT_EQ(p2.q.bitLength(), 54u);

    // 109-bit: check residue via WideInt.
    const auto p4 = standardParams<4>();
    EXPECT_EQ(p4.q.bitLength(), 109u);
    EXPECT_EQ(mod(p4.q, U128(2 * p4.n)).toUint64(), 1u);
}

TEST(Mod64, FindNttPrimes)
{
    const auto primes = findNttPrimes(30, 2048, 5);
    ASSERT_EQ(primes.size(), 5u);
    for (const auto p : primes) {
        EXPECT_TRUE(isPrime64(p));
        EXPECT_EQ(p % 2048, 1u);
        EXPECT_EQ(p >> 29, 1u) << "should be a 30-bit prime";
    }
    // Distinct.
    for (std::size_t i = 0; i < primes.size(); ++i)
        for (std::size_t j = i + 1; j < primes.size(); ++j)
            EXPECT_NE(primes[i], primes[j]);
}

TEST(Mod64, PrimitiveRootHasExactOrder)
{
    for (const auto p : findNttPrimes(40, 4096, 3)) {
        const std::uint64_t root = primitiveRoot(p, 4096);
        EXPECT_EQ(powMod64(root, 4096, p), 1u);
        EXPECT_EQ(powMod64(root, 2048, p), p - 1)
            << "root must have order exactly 4096";
    }
}

template <typename T>
class BarrettWidths : public ::testing::Test
{
};

using BarrettTypes =
    ::testing::Types<WideInt<1>, WideInt<2>, WideInt<4>>;
TYPED_TEST_SUITE(BarrettWidths, BarrettTypes);

TYPED_TEST(BarrettWidths, ReduceMatchesDivmod)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    const auto params = standardParams<N>();
    const BarrettReducer<N> red(params.q);
    Rng rng(kSeed + N);
    for (int it = 0; it < 300; ++it) {
        const auto a = randomBelow<N>(rng, params.q);
        const auto b = randomBelow<N>(rng, params.q);
        const auto prod = a.mulFull(b);
        EXPECT_EQ(red.reduce(prod),
                  divmod(prod, params.q.template convert<2 * N>())
                      .second.template convert<N>())
            << "iter " << it;
    }
}

TYPED_TEST(BarrettWidths, ModularFieldAxioms)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    const auto params = standardParams<N>();
    const BarrettReducer<N> red(params.q);
    Rng rng(kSeed + 31 + N);
    for (int it = 0; it < 100; ++it) {
        const auto a = randomBelow<N>(rng, params.q);
        const auto b = randomBelow<N>(rng, params.q);
        const auto c = randomBelow<N>(rng, params.q);
        // Commutativity and associativity.
        EXPECT_EQ(red.mulMod(a, b), red.mulMod(b, a));
        EXPECT_EQ(red.mulMod(red.mulMod(a, b), c),
                  red.mulMod(a, red.mulMod(b, c)));
        // Distributivity.
        EXPECT_EQ(red.mulMod(a, red.addMod(b, c)),
                  red.addMod(red.mulMod(a, b), red.mulMod(a, c)));
        // Additive inverse.
        EXPECT_TRUE(red.addMod(a, red.negMod(a)).isZero());
        // Subtraction is inverse of addition.
        EXPECT_EQ(red.subMod(red.addMod(a, b), b), a);
    }
}

TYPED_TEST(BarrettWidths, PowMod)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    const auto params = standardParams<N>();
    const BarrettReducer<N> red(params.q);
    Rng rng(kSeed + 77);
    const auto a = randomBelow<N>(rng, params.q);
    EXPECT_EQ(red.powMod(a, 0), WideInt<N>(1ULL));
    EXPECT_EQ(red.powMod(a, 1), a);
    EXPECT_EQ(red.powMod(a, 5),
              red.mulMod(red.mulMod(red.mulMod(a, a),
                                    red.mulMod(a, a)),
                         a));
}

TEST(Barrett, EdgeValues)
{
    const auto params = standardParams<4>();
    const BarrettReducer<4> red(params.q);
    const U128 qm1 = params.q - U128(1ULL);
    // (q-1)^2 mod q == 1.
    EXPECT_EQ(red.mulMod(qm1, qm1), U128(1ULL));
    EXPECT_TRUE(red.mulMod(U128(), qm1).isZero());
    EXPECT_EQ(red.reduceSingle(params.q - U128(1ULL)), qm1);
    EXPECT_TRUE(red.addMod(qm1, U128(1ULL)).isZero());
}

TEST(Barrett, RejectsZeroModulus)
{
    EXPECT_DEATH({ BarrettReducer<4> r{U128()}; (void)r; },
                 "zero modulus");
}


TEST(Montgomery, MatchesMulMod64)
{
    Rng rng(kSeed + 90);
    for (const std::uint64_t p :
         {3ULL, 65537ULL, 134215681ULL, 18014398509404161ULL,
          (1ULL << 61) - 1}) {
        const MontgomeryReducer mont(p);
        for (int it = 0; it < 200; ++it) {
            const std::uint64_t a = rng.uniform(p);
            const std::uint64_t b = rng.uniform(p);
            EXPECT_EQ(mont.mulMod(a, b), mulMod64(a, b, p))
                << a << " * " << b << " mod " << p;
        }
    }
}

TEST(Montgomery, FormRoundTrip)
{
    const MontgomeryReducer mont(18014398509404161ULL);
    Rng rng(kSeed + 91);
    for (int it = 0; it < 200; ++it) {
        const std::uint64_t x = rng.uniform(mont.modulus());
        EXPECT_EQ(mont.fromMont(mont.toMont(x)), x);
    }
}

TEST(Montgomery, PowMatchesPowMod64)
{
    const std::uint64_t p = 134215681ULL;
    const MontgomeryReducer mont(p);
    Rng rng(kSeed + 92);
    for (int it = 0; it < 50; ++it) {
        const std::uint64_t base = rng.uniform(p);
        const std::uint64_t exp = rng.uniform(1 << 20);
        EXPECT_EQ(mont.powMod(base, exp), powMod64(base, exp, p));
    }
}

TEST(Montgomery, EdgeValues)
{
    const std::uint64_t p = 65537;
    const MontgomeryReducer mont(p);
    EXPECT_EQ(mont.mulMod(0, 12345), 0u);
    EXPECT_EQ(mont.mulMod(1, 12345), 12345u);
    EXPECT_EQ(mont.mulMod(p - 1, p - 1), 1u);
}

TEST(Montgomery, RejectsBadModuli)
{
    EXPECT_DEATH(MontgomeryReducer(8), "odd");
    EXPECT_DEATH(MontgomeryReducer(1), "odd");
    EXPECT_DEATH(MontgomeryReducer(1ULL << 63), "odd");
}

// ----- boundary values: q near 2^k, max operands, width limits -----

TEST(Barrett, QNearPowerOfTwoBoundaries)
{
    // Moduli one step below a power of two maximise the Barrett
    // remainder bound (2^(2k) mod q is largest there). Check the
    // reduction against exact division at the extreme operands.
    const U32 moduli[] = {
        U32(134215681ULL),        // 2^27 - 2047 (the paper's q)
        U32((1ULL << 31) - 1),    // Mersenne prime, k = 31
        U32((1ULL << 27) + 1ULL), // just above a power of two
    };
    for (const auto &q : moduli) {
        const BarrettReducer<1> red(q);
        const auto qw = q.convert<2>();
        const U64 xs[] = {
            U64(),                              // zero
            qw - U64(1ULL),                     // q - 1
            qw,                                 // exactly q
            qw + U64(1ULL),                     // q + 1
            (qw - U64(1ULL)).mulKaratsuba(qw - U64(1ULL)).convert<2>(),
            U64::oneShl(2 * q.bitLength()) - U64(1ULL), // max input
        };
        for (const auto &x : xs)
            EXPECT_EQ(red.reduce(x), divmod(x, qw).second.convert<1>())
                << "q=" << q.toDecimalString()
                << " x=" << x.toDecimalString();
    }
}

TEST(Barrett, MaxInputAtEveryWidth)
{
    // x = 2^(2k) - 1, the largest input reduce() admits, for each of
    // the paper's moduli widths.
    const auto check = [](const auto &params) {
        constexpr std::size_t N = decltype(params.q)::numLimbs;
        const BarrettReducer<N> red(params.q);
        const auto qw = params.q.template convert<2 * N>();
        const auto x =
            WideInt<2 * N>::oneShl(2 * params.q.bitLength()) -
            WideInt<2 * N>(1ULL);
        EXPECT_EQ(red.reduce(x).template convert<2 * N>(),
                  divmod(x, qw).second);
    };
    check(standardParams<1>());
    check(standardParams<2>());
    check(standardParams<4>());
}

TEST(Barrett, RejectsModulusTooWideForContext)
{
    // k = 32 needs 2k+1 = 65 bits of double-width headroom; a 1-limb
    // reducer only has 64. The constructor must refuse rather than
    // silently truncate mu.
    EXPECT_DEATH(BarrettReducer<1>(U32(0xFFFFFFFFULL)), "too wide");
}

TEST(Montgomery, WidthBoundaryModuli)
{
    // Largest odd modulus below the 2^62 bound and the smallest legal
    // one; REDC correctness at the extremes of the admitted range.
    for (const std::uint64_t p :
         {(1ULL << 62) - 1, (1ULL << 62) - 57, 3ULL}) {
        const MontgomeryReducer mont(p);
        EXPECT_EQ(mont.mulMod(p - 1, p - 1), mulMod64(p - 1, p - 1, p))
            << p;
        EXPECT_EQ(mont.mulMod(p - 1, 1), p - 1) << p;
        EXPECT_EQ(mont.fromMont(mont.toMont(p - 1)), p - 1) << p;
    }
    EXPECT_DEATH(MontgomeryReducer((1ULL << 62) + 1), "too wide");
}

} // namespace
} // namespace pimhe

/**
 * @file
 * End-to-end tests of the BFV scheme: key generation, encryption,
 * homomorphic evaluation, relinearisation and noise tracking.
 */

#include <gtest/gtest.h>

#include "ntt/rns.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::BfvHarness;
using pimhe::testing::kSeed;

template <typename T>
class BfvWidths : public ::testing::Test
{
};

using BfvTypes = ::testing::Types<WideInt<1>, WideInt<2>, WideInt<4>>;
TYPED_TEST_SUITE(BfvWidths, BfvTypes);

TYPED_TEST(BfvWidths, EncryptDecryptRoundTrip)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    for (std::uint64_t v = 0; v < h.params.t; v += 1 + h.params.t / 13)
        EXPECT_EQ(h.decryptScalar(h.encryptScalar(v)), v) << "v=" << v;
}

TYPED_TEST(BfvWidths, FreshCiphertextHasPositiveNoiseBudget)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto pt = h.encoder.encodeScalar(5);
    const auto ct = h.enc.encrypt(pt);
    EXPECT_GT(h.dec.noiseBudgetBits(ct, pt), 5.0);
}

TYPED_TEST(BfvWidths, HomomorphicAddition)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    Rng vals(kSeed);
    for (int it = 0; it < 20; ++it) {
        const std::uint64_t a = vals.uniform(h.params.t);
        const std::uint64_t b = vals.uniform(h.params.t);
        const auto ct =
            h.eval.add(h.encryptScalar(a), h.encryptScalar(b));
        EXPECT_EQ(h.decryptScalar(ct), (a + b) % h.params.t);
    }
}

TYPED_TEST(BfvWidths, HomomorphicSubtraction)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto ct = h.eval.sub(h.encryptScalar(3), h.encryptScalar(9));
    EXPECT_EQ(h.decryptScalar(ct),
              (3 + h.params.t - 9) % h.params.t);
}

TYPED_TEST(BfvWidths, AddPlain)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto ct = h.eval.addPlain(h.encryptScalar(4),
                                    h.encoder.encodeScalar(9));
    EXPECT_EQ(h.decryptScalar(ct), (4 + 9) % h.params.t);
}

TYPED_TEST(BfvWidths, HomomorphicMultiplication)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    Rng vals(kSeed + 2);
    for (int it = 0; it < 10; ++it) {
        const std::uint64_t a = vals.uniform(h.params.t);
        const std::uint64_t b = vals.uniform(h.params.t);
        const auto ct =
            h.eval.multiply(h.encryptScalar(a), h.encryptScalar(b));
        EXPECT_EQ(ct.size(), 3u);
        EXPECT_EQ(h.decryptScalar(ct), (a * b) % h.params.t)
            << a << " * " << b;
    }
}

TYPED_TEST(BfvWidths, SquareMatchesMultiply)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto ct = h.encryptScalar(7);
    const auto sq = h.eval.square(ct);
    const auto mu = h.eval.multiply(ct, ct);
    ASSERT_EQ(sq.size(), mu.size());
    for (std::size_t i = 0; i < sq.size(); ++i)
        EXPECT_TRUE(sq[i] == mu[i]) << "component " << i;
}

TYPED_TEST(BfvWidths, Relinearization)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto rlk = h.keygen.makeRelinKey();
    const auto prod =
        h.eval.multiply(h.encryptScalar(6), h.encryptScalar(7));
    const auto rel = h.eval.relinearize(prod, rlk);
    EXPECT_EQ(rel.size(), 2u);
    EXPECT_EQ(h.decryptScalar(rel), (6 * 7) % h.params.t);
}

TYPED_TEST(BfvWidths, MulScalar)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto ct = h.eval.mulScalar(h.encryptScalar(5), 3);
    EXPECT_EQ(h.decryptScalar(ct), (5 * 3) % h.params.t);
}

TYPED_TEST(BfvWidths, AdditionChainPreservesCorrectness)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    // Summing many fresh ciphertexts models the arithmetic-mean
    // aggregation; noise grows additively and must stay decodable.
    auto acc = h.encryptScalar(1);
    std::uint64_t expect = 1;
    for (int i = 0; i < 40; ++i) {
        acc = h.eval.add(acc, h.encryptScalar(i % 5));
        expect = (expect + i % 5) % h.params.t;
    }
    EXPECT_EQ(h.decryptScalar(acc), expect);
}

TYPED_TEST(BfvWidths, BatchEncodingSimdAddition)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    std::vector<std::uint64_t> va, vb;
    Rng vals(kSeed + 4);
    for (std::size_t i = 0; i < h.params.n; ++i) {
        va.push_back(vals.uniform(h.params.t));
        vb.push_back(vals.uniform(h.params.t));
    }
    const auto ct = h.eval.add(h.enc.encrypt(h.encoder.encodeBatch(va)),
                               h.enc.encrypt(h.encoder.encodeBatch(vb)));
    const auto out = h.encoder.decodeBatch(h.dec.decrypt(ct),
                                           h.params.n);
    for (std::size_t i = 0; i < h.params.n; ++i)
        EXPECT_EQ(out[i], (va[i] + vb[i]) % h.params.t) << "slot " << i;
}

TYPED_TEST(BfvWidths, NoiseBudgetShrinksWithWork)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto pt = h.encoder.encodeScalar(2);
    const auto fresh = h.enc.encrypt(pt);
    const double fresh_budget = h.dec.noiseBudgetBits(fresh, pt);

    const auto pt4 = h.encoder.encodeScalar(4);
    const auto prod = h.eval.multiply(fresh, fresh);
    const double mul_budget = h.dec.noiseBudgetBits(prod, pt4);
    EXPECT_LT(mul_budget, fresh_budget)
        << "multiplication must consume noise budget";
}


TYPED_TEST(BfvWidths, HomomorphicNegation)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto ct = h.eval.negate(h.encryptScalar(5));
    EXPECT_EQ(h.decryptScalar(ct), h.params.t - 5);
    // Double negation restores the value bit-exactly.
    const auto orig = h.encryptScalar(5);
    const auto back = h.eval.negate(h.eval.negate(orig));
    for (std::size_t c = 0; c < 2; ++c)
        EXPECT_TRUE(back[c] == orig[c]);
}

TYPED_TEST(BfvWidths, SubPlain)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto ct = h.eval.subPlain(h.encryptScalar(11),
                                    h.encoder.encodeScalar(4));
    EXPECT_EQ(h.decryptScalar(ct), 7u);
    // Going below zero wraps modulo t.
    const auto neg = h.eval.subPlain(h.encryptScalar(2),
                                     h.encoder.encodeScalar(5));
    EXPECT_EQ(h.decryptScalar(neg), h.params.t - 3);
}

TYPED_TEST(BfvWidths, MulPlainScalar)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h;
    const auto ct = h.eval.mulPlain(h.encryptScalar(6),
                                    h.encoder.encodeScalar(2));
    EXPECT_EQ(ct.size(), 2u) << "no tensor product for plain mult";
    EXPECT_EQ(h.decryptScalar(ct), 12 % h.params.t);
}

TEST(Bfv, MulPlainPolynomial)
{
    // Multiplying by the plaintext polynomial x shifts batch slots
    // negacyclically, matching the ring behaviour.
    BfvHarness<4> h;
    std::vector<std::uint64_t> vals(h.params.n, 0);
    vals[0] = 3;
    vals[1] = 9;
    const auto ct = h.enc.encrypt(h.encoder.encodeBatch(vals));
    Plaintext x(h.params.n);
    x.coeffs[1] = 1;
    const auto shifted = h.eval.mulPlain(ct, x);
    const auto out =
        h.encoder.decodeBatch(h.dec.decrypt(shifted), h.params.n);
    EXPECT_EQ(out[1], 3u);
    EXPECT_EQ(out[2], 9u);
    EXPECT_EQ(out[0], 0u);
}

TEST(Bfv, MulPlainCheaperNoiseThanCtMult)
{
    BfvHarness<4> h;
    const auto pt2 = h.encoder.encodeScalar(2);
    const auto ct = h.encryptScalar(6);
    const auto plain_prod = h.eval.mulPlain(ct, pt2);
    const auto ct_prod = h.eval.multiply(ct, h.encryptScalar(2));
    const auto expect = h.encoder.encodeScalar(12);
    EXPECT_GT(h.dec.noiseBudgetBits(plain_prod, expect),
              h.dec.noiseBudgetBits(ct_prod, expect));
}

// ----- width-specific behaviours -----

TEST(Bfv, DeepMultiplicationChain128Bit)
{
    // The 109-bit modulus sustains several multiplicative levels.
    BfvHarness<4> h(16);
    const auto rlk = h.keygen.makeRelinKey();
    auto ct = h.encryptScalar(3);
    std::uint64_t expect = 3;
    for (int level = 0; level < 2; ++level) {
        ct = h.eval.relinearize(h.eval.multiply(ct, ct), rlk);
        expect = (expect * expect) % h.params.t;
        EXPECT_EQ(h.decryptScalar(ct), expect)
            << "level " << level;
    }
}

TEST(Bfv, MultiplyRelinHelper)
{
    BfvHarness<2> h;
    const auto rlk = h.keygen.makeRelinKey();
    const auto ct = h.eval.multiplyRelin(h.encryptScalar(11),
                                         h.encryptScalar(13), rlk);
    EXPECT_EQ(ct.size(), 2u);
    EXPECT_EQ(h.decryptScalar(ct), (11 * 13) % h.params.t);
}

TEST(Bfv, NttConvolverGivesBitIdenticalCiphertexts)
{
    // Engine substitution must not change a single bit: run the same
    // multiplication with schoolbook and RNS+NTT convolvers.
    BfvHarness<4> h(32, kSeed + 100);
    const auto a = h.encryptScalar(9);
    const auto b = h.encryptScalar(5);
    const auto slow = h.eval.multiply(a, b);
    h.ctx.setConvolver(
        std::make_unique<RnsNttConvolver<4>>(h.ctx.ring()));
    const auto fast = h.eval.multiply(a, b);
    ASSERT_EQ(slow.size(), fast.size());
    for (std::size_t i = 0; i < slow.size(); ++i)
        EXPECT_TRUE(slow[i] == fast[i]) << "component " << i;
}

TEST(Bfv, FullDegreeRoundTripAllLevels)
{
    // Full paper-scale ring degrees with the fast convolver: encrypt,
    // add, multiply, decrypt at n = 1024 / 2048 / 4096.
    {
        BfvHarness<1> h(standardParams<1>().n);
        h.ctx.setConvolver(
            std::make_unique<RnsNttConvolver<1>>(h.ctx.ring()));
        EXPECT_EQ(h.decryptScalar(
                      h.eval.add(h.encryptScalar(3), h.encryptScalar(4))),
                  7u);
    }
    {
        BfvHarness<2> h(standardParams<2>().n);
        h.ctx.setConvolver(
            std::make_unique<RnsNttConvolver<2>>(h.ctx.ring()));
        EXPECT_EQ(h.decryptScalar(h.eval.multiply(
                      h.encryptScalar(14), h.encryptScalar(9))),
                  (14 * 9) % h.params.t);
    }
    {
        BfvHarness<4> h(standardParams<4>().n);
        h.ctx.setConvolver(
            std::make_unique<RnsNttConvolver<4>>(h.ctx.ring()));
        EXPECT_EQ(h.decryptScalar(h.eval.multiply(
                      h.encryptScalar(251), h.encryptScalar(197))),
                  (251 * 197) % h.params.t);
    }
}

TEST(Bfv, ParamsValidation)
{
    BfvParams<4> bad = standardParams<4>();
    bad.n = 12;
    EXPECT_DEATH(bad.validate(), "power of two");
    bad = standardParams<4>();
    bad.t = 1;
    EXPECT_DEATH(bad.validate(), "too small");
}

TEST(Bfv, DeltaIsFloorQOverT)
{
    const auto p = standardParams<4>();
    const auto delta = p.delta();
    const auto back = delta.mulFull(U128(p.t)).convert<4>();
    EXPECT_LE(back, p.q);
    EXPECT_GT(back + U128(p.t), p.q);
}

TEST(Bfv, EncoderSignedDecode)
{
    IntegerEncoder enc(257, 16);
    EXPECT_EQ(enc.toSigned(256), -1);
    EXPECT_EQ(enc.toSigned(1), 1);
    EXPECT_EQ(enc.toSigned(128), 128);
    EXPECT_EQ(enc.toSigned(129), -128);
}

TEST(Bfv, LevelMetadata)
{
    EXPECT_EQ(limbsFor(SecurityLevel::Bits27), 1u);
    EXPECT_EQ(limbsFor(SecurityLevel::Bits54), 2u);
    EXPECT_EQ(limbsFor(SecurityLevel::Bits109), 4u);
    EXPECT_NE(levelName(SecurityLevel::Bits109).find("4096"),
              std::string::npos);
}

} // namespace
} // namespace pimhe

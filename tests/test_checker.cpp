/**
 * @file
 * Tests for the cross-tasklet conflict checker: deliberately racy
 * kernels must be flagged with the right tasklet ids and byte ranges,
 * disjoint kernels must come out clean, and every shipped kernel must
 * run conflict-free at 1, 11 and 16 tasklets.
 */

#include <gtest/gtest.h>

#include "bfv/params.h"
#include "pimhe/kernels.h"
#include "pimhe/ntt_kernel.h"
#include "pimhe/orchestrator.h"
#include "test_util.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using namespace pimhe::pimhe_kernels;
using pimhe::testing::BfvHarness;
using pimhe::testing::kSeed;

DpuConfig
checkedCfg()
{
    DpuConfig cfg;
    cfg.checker.enabled = true;
    return cfg;
}

// ----- positive cases: deliberately conflicting kernels -----

TEST(Checker, WriteWriteOverlapReported)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        ctx.wramStore32(64, ctx.id());
    });
    const auto &report = stats.conflicts;
    ASSERT_EQ(report.totalConflicts, 1u) << report.summary();
    const auto &c = report.conflicts.at(0);
    EXPECT_EQ(c.space, MemSpace::Wram);
    EXPECT_EQ(c.begin, 64u);
    EXPECT_EQ(c.end, 68u);
    EXPECT_EQ(c.taskletA, 0u);
    EXPECT_EQ(c.taskletB, 1u);
    EXPECT_TRUE(c.writeWrite);
    EXPECT_TRUE(c.kindsA &
                (1u << static_cast<unsigned>(AccessKind::WramStore)));
    EXPECT_NE(c.describe().find("write/write"), std::string::npos);
}

TEST(Checker, ReadWriteOverlapReported)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        if (ctx.id() == 0)
            ctx.wramStore32(128, 7);
        else
            ctx.wramLoad32(128);
    });
    const auto &report = stats.conflicts;
    ASSERT_EQ(report.totalConflicts, 1u) << report.summary();
    const auto &c = report.conflicts.at(0);
    EXPECT_FALSE(c.writeWrite);
    EXPECT_EQ(c.begin, 128u);
    EXPECT_EQ(c.end, 132u);
    EXPECT_EQ(c.taskletA, 0u);
    EXPECT_EQ(c.taskletB, 1u);
}

TEST(Checker, MramDmaOverlapReported)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        // Disjoint WRAM staging, overlapping MRAM destination.
        ctx.mramWrite(ctx.id() * 64, 4096, 32);
    });
    const auto &report = stats.conflicts;
    ASSERT_EQ(report.totalConflicts, 1u) << report.summary();
    const auto &c = report.conflicts.at(0);
    EXPECT_EQ(c.space, MemSpace::Mram);
    EXPECT_EQ(c.begin, 4096u);
    EXPECT_EQ(c.end, 4096u + 32u);
    EXPECT_TRUE(c.writeWrite);
    EXPECT_TRUE(c.kindsA &
                (1u << static_cast<unsigned>(AccessKind::DmaWrite)));
}

TEST(Checker, PartialOverlapReportsExactByteRange)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        // [96, 128) vs [120, 152): 8 overlapping bytes.
        ctx.mramWrite(0, 96 + ctx.id() * 24, 32);
    });
    const auto &report = stats.conflicts;
    ASSERT_EQ(report.totalConflicts, 1u) << report.summary();
    EXPECT_EQ(report.conflicts.at(0).begin, 120u);
    EXPECT_EQ(report.conflicts.at(0).end, 128u);
}

TEST(Checker, UnalignedDmaFlagged)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(1, [](TaskletCtx &ctx) {
        ctx.mramRead(4, 0, 8);   // MRAM side unaligned
        ctx.mramRead(8, 12, 8);  // WRAM side unaligned
        ctx.mramRead(16, 16, 8); // aligned: no diagnostic
    });
    const auto &diags = stats.conflicts.diagnostics;
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].kind, Diagnostic::Kind::UnalignedDma);
    EXPECT_EQ(diags[1].kind, Diagnostic::Kind::UnalignedDma);
    EXPECT_EQ(stats.conflicts.totalConflicts, 0u);
}

TEST(Checker, WramNearMissFlagged)
{
    DpuConfig cfg = checkedCfg();
    cfg.checker.wramGuardBytes = 64;
    Dpu dpu(cfg);
    const std::uint32_t top =
        static_cast<std::uint32_t>(cfg.wramBytes) - 4;
    const auto stats = dpu.run(1, [top](TaskletCtx &ctx) {
        ctx.wramStore32(top, 1);       // inside the guard band
        ctx.wramStore32(top - 256, 1); // well clear of it
    });
    const auto &diags = stats.conflicts.diagnostics;
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, Diagnostic::Kind::WramNearMiss);
}

TEST(Checker, BarrierMismatchFlagged)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        if (ctx.id() == 0)
            ctx.barrier();
        ctx.wramStore32(ctx.id() * 64, 1);
    });
    const auto &diags = stats.conflicts.diagnostics;
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, Diagnostic::Kind::BarrierMismatch);
}

TEST(Checker, FailFastPanics)
{
    DpuConfig cfg = checkedCfg();
    cfg.checker.failFast = true;
    Dpu dpu(cfg);
    EXPECT_DEATH(dpu.run(2,
                         [](TaskletCtx &ctx) {
                             ctx.wramStore32(0, ctx.id());
                         }),
                 "conflict");
}

// ----- negative cases: ordered or disjoint accesses stay clean -----

TEST(Checker, DisjointPartitionIsClean)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(4, [](TaskletCtx &ctx) {
        const std::uint32_t base = ctx.id() * 256;
        ctx.mramRead(4096 + ctx.id() * 256, base, 64);
        for (std::uint32_t i = 0; i < 16; ++i)
            ctx.wramStore32(base + 64 + 4 * i,
                            ctx.wramLoad32(base + 4 * i));
        ctx.mramWrite(base + 64, 8192 + ctx.id() * 256, 64);
    });
    EXPECT_TRUE(stats.conflicts.clean()) << stats.conflicts.summary();
    EXPECT_GT(stats.conflicts.accessesRecorded, 0u);
}

TEST(Checker, SharedReadsAreClean)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(8, [](TaskletCtx &ctx) {
        // Everyone reads the same table: read/read never conflicts.
        for (std::uint32_t i = 0; i < 8; ++i)
            ctx.wramLoad32(4 * i);
    });
    EXPECT_TRUE(stats.conflicts.clean()) << stats.conflicts.summary();
}

TEST(Checker, BarrierOrdersStagingAgainstReaders)
{
    // The tasklet-0-stages-shared-data pattern used by the conv and
    // NTT kernels: racy without the barrier, clean with it.
    const auto staging = [](bool with_barrier) {
        return [with_barrier](TaskletCtx &ctx) {
            if (ctx.id() == 0)
                ctx.mramRead(0, 0, 64);
            if (with_barrier)
                ctx.barrier();
            ctx.wramLoad32(4 * ctx.id());
        };
    };
    Dpu racy(checkedCfg());
    const auto bad = racy.run(4, staging(false));
    EXPECT_GT(bad.conflicts.totalConflicts, 0u);

    Dpu ordered(checkedCfg());
    const auto good = ordered.run(4, staging(true));
    EXPECT_TRUE(good.conflicts.clean()) << good.conflicts.summary();
}

TEST(Checker, SuppressionApiSilencesJustifiedRanges)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        ctx.checkerAllowRange(MemSpace::Wram, 64, 4,
                              "test: externally synchronised slot");
        ctx.wramStore32(64, ctx.id());
    });
    EXPECT_EQ(stats.conflicts.totalConflicts, 0u);
    EXPECT_EQ(stats.conflicts.suppressedConflicts, 1u);
    EXPECT_TRUE(stats.conflicts.clean());
}

TEST(Checker, DisabledByDefaultRecordsNothing)
{
    Dpu dpu(DpuConfig{});
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        ctx.wramStore32(0, ctx.id()); // racy, but nobody is looking
    });
    EXPECT_TRUE(stats.conflicts.clean());
    EXPECT_EQ(stats.conflicts.accessesRecorded, 0u);
}

// ----- regression: every shipped kernel is conflict-clean -----

class ShippedKernels : public ::testing::TestWithParam<unsigned>
{
};

INSTANTIATE_TEST_SUITE_P(Tasklets, ShippedKernels,
                         ::testing::Values(1u, 11u, 16u),
                         [](const auto &tpi) {
                             return "t" + std::to_string(tpi.param);
                         });

/** Kernel-shape VecKernelParams matching cost_model.h's probes. */
VecKernelParams
vecShape(std::uint32_t limbs, std::uint32_t elems)
{
    static constexpr std::uint32_t ks[3] = {27, 54, 109};
    static constexpr std::uint32_t cs[3] = {2047, 77823, 229375};
    const std::size_t w = limbs == 1 ? 0 : limbs == 2 ? 1 : 2;
    VecKernelParams p;
    p.elems = elems;
    p.limbs = limbs;
    p.k = ks[w];
    p.c = cs[w];
    const U128 q = U128::oneShl(p.k) - U128(cs[w]);
    for (std::size_t l = 0; l < 4; ++l)
        p.q[l] = q.limb(l);
    const std::size_t arr = ((elems * limbs * 4 + 7) / 8) * 8;
    p.mramA = 0;
    p.mramB = arr;
    p.mramOut = 2 * arr;
    return p;
}

TEST_P(ShippedKernels, ElementwiseKernelsConflictClean)
{
    const unsigned tasklets = GetParam();
    // Awkward element counts: odd splits at 4-byte element width used
    // to make adjacent tasklets' rounded-up DMA tails overlap.
    const struct
    {
        std::uint32_t limbs;
        std::uint32_t elems;
    } shapes[] = {{1, 1000}, {1, 513}, {2, 513}, {4, 129}};
    for (const auto &s : shapes) {
        const auto p = vecShape(s.limbs, s.elems);
        for (const bool multiply : {false, true}) {
            Dpu dpu(checkedCfg());
            const auto stats =
                dpu.run(tasklets, multiply
                                      ? makeVecMulModQKernel(p)
                                      : makeVecAddModQKernel(p));
            EXPECT_TRUE(stats.conflicts.clean())
                << "limbs=" << s.limbs << " elems=" << s.elems
                << " mul=" << multiply << " tasklets=" << tasklets
                << "\n"
                << stats.conflicts.summary();
        }
    }
}

TEST_P(ShippedKernels, ConvolutionKernelConflictClean)
{
    const unsigned tasklets = GetParam();
    ConvKernelParams p;
    p.n = 32;
    p.limbs = 2;
    p.q = {0xFFFFFFFFu, 0xFFFFFFFFu, 0, 0};
    p.halfQ = {0xFFFFFFFFu, 0x7FFFFFFFu, 0, 0};
    p.mramA = 0;
    p.mramB = p.n * p.limbs * 4;
    p.mramOut = 2 * p.n * p.limbs * 4;
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(tasklets, makeNegacyclicConvKernel(p));
    EXPECT_TRUE(stats.conflicts.clean())
        << "tasklets=" << tasklets << "\n" << stats.conflicts.summary();
}

TEST_P(ShippedKernels, NttKernelConflictClean)
{
    const unsigned tasklets = GetParam();
    const std::uint32_t n = 64;
    const std::uint32_t p = static_cast<std::uint32_t>(
        findNttPrimes(30, 2 * n, 1)[0]);
    const auto kp = makeNttParams(p, n, 5);
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(tasklets, makeNttMulKernel(kp));
    EXPECT_TRUE(stats.conflicts.clean())
        << "tasklets=" << tasklets << "\n" << stats.conflicts.summary();
}

TEST(CheckerOrchestrator, PimHeSystemLaunchesConflictClean)
{
    constexpr std::size_t N = 2;
    BfvHarness<N> h(16);
    pim::SystemConfig cfg;
    cfg.numDpus = 4;
    cfg.dpu.checker.enabled = true;
    cfg.dpu.checker.failFast = true; // a dirty launch would abort
    PimHeSystem<N> pimsys(h.ctx, cfg, 3, 11);

    std::vector<Ciphertext<N>> as, bs;
    for (int i = 0; i < 5; ++i) {
        as.push_back(h.encryptScalar(i));
        bs.push_back(h.encryptScalar(i + 2));
    }
    const auto sums = pimsys.addCiphertextVectors(as, bs);
    EXPECT_TRUE(pimsys.lastLaunch().conflictClean());
    EXPECT_EQ(pimsys.lastLaunch().totalConflicts(), 0u);
    const auto prods = pimsys.mulCoefficientwise(as, bs);
    EXPECT_TRUE(pimsys.lastLaunch().conflictClean());
    // The checked results still decrypt correctly.
    EXPECT_EQ(h.decryptScalar(sums[1]), 4u);
}

} // namespace
} // namespace pimhe

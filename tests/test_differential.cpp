/**
 * @file
 * Differential fuzzing of the PIM execution path against the host
 * evaluator: seeded randomized chains of BFV operations run both on
 * PimHeSystem (through the host-parallel execution engine) and on the
 * host Evaluator, asserting bit-exact ciphertexts at every step and
 * correct decryption of the add chains. Three parameter widths
 * (32/64/128-bit moduli) at two ring degrees give six parameter sets;
 * the iteration count across them exceeds 100.
 */

#include <gtest/gtest.h>

#include "pimhe/orchestrator.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::BfvHarness;
using pimhe::testing::kSeed;

pim::SystemConfig
fuzzSystem(std::size_t dpus)
{
    pim::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.verifyBeforeLaunch = true;
    // Exercise the parallel engine; results are thread-count
    // invariant, so this cannot perturb the differential check.
    cfg.hostThreads = 4;
    cfg.dpu.checker.enabled = true;
    cfg.dpu.checker.failFast = true;
    return cfg;
}

template <std::size_t N>
void
expectCiphertextsEqual(const Ciphertext<N> &a, const Ciphertext<N> &b,
                       const char *what, int iter)
{
    ASSERT_EQ(a.size(), b.size()) << what << " iter " << iter;
    for (std::size_t c = 0; c < a.size(); ++c)
        ASSERT_TRUE(a[c] == b[c])
            << what << " differs: iter " << iter << " comp " << c;
}

/**
 * One fuzzing campaign: a chain of ciphertexts evolves through
 * PIM-executed adds (mirrored on the host evaluator), interleaved
 * with coefficientwise-product and full-BFV-multiply differential
 * checks on the current chain state.
 */
template <std::size_t N>
void
runCampaign(std::size_t degree, std::uint64_t seed, int iters)
{
    BfvHarness<N> h(degree, seed);
    constexpr std::size_t kChain = 3;
    PimHeSystem<N> pimsys(h.ctx, fuzzSystem(4), 4, 12);

    // Second context with the PIM convolver so full BFV multiplies
    // can be compared against the host-convolver evaluator.
    BfvContext<N> pim_ctx(h.params);
    pim_ctx.setConvolver(std::make_unique<PimConvolver<N>>(
        pim_ctx.ring(), fuzzSystem(1), 11));
    Evaluator<N> pim_eval(pim_ctx);

    Rng rng(seed ^ 0xD1FFu);
    std::vector<Ciphertext<N>> chain;
    std::vector<std::uint64_t> expected;
    for (std::size_t i = 0; i < kChain; ++i) {
        const std::uint64_t v = rng.uniform(h.params.t);
        chain.push_back(h.encryptScalar(v));
        expected.push_back(v);
    }

    const auto &red = h.ctx.ring().reducer();
    for (int iter = 0; iter < iters; ++iter) {
        std::vector<Ciphertext<N>> fresh;
        std::vector<std::uint64_t> vals;
        for (std::size_t i = 0; i < kChain; ++i) {
            const std::uint64_t v = rng.uniform(h.params.t);
            fresh.push_back(h.encryptScalar(v));
            vals.push_back(v);
        }

        switch (rng.uniform(3)) {
          case 0: {
            // Homomorphic add on PIM vs host; advances the chain.
            const auto pim = pimsys.addCiphertextVectors(chain, fresh);
            for (std::size_t i = 0; i < kChain; ++i) {
                const auto host = h.eval.add(chain[i], fresh[i]);
                expectCiphertextsEqual(host, pim[i], "add", iter);
                expected[i] = (expected[i] + vals[i]) % h.params.t;
            }
            chain = pim;
            break;
          }
          case 1: {
            // Coefficientwise modular product vs the host reducer.
            const auto pim = pimsys.mulCoefficientwise(chain, fresh);
            for (std::size_t i = 0; i < kChain; ++i)
                for (std::size_t c = 0; c < chain[i].size(); ++c)
                    for (std::size_t j = 0; j < h.params.n; ++j)
                        ASSERT_EQ(pim[i][c][j],
                                  red.mulMod(chain[i][c][j],
                                             fresh[i][c][j]))
                            << "iter " << iter << " ct " << i;
            break;
          }
          case 2: {
            // Full BFV multiply: PIM convolver vs host convolver.
            // Fresh operands keep the product inside the one-mult
            // noise budget, so decryption is also checkable.
            const auto host = h.eval.multiply(fresh[0], fresh[1]);
            const auto pim = pim_eval.multiply(fresh[0], fresh[1]);
            expectCiphertextsEqual(host, pim, "multiply", iter);
            EXPECT_EQ(h.decryptScalar(pim),
                      vals[0] * vals[1] % h.params.t)
                << "multiply decrypt, iter " << iter;
            break;
          }
        }

        // Decryption stays correct as the add chain deepens.
        if (iter % 4 == 3) {
            for (std::size_t i = 0; i < kChain; ++i) {
                ASSERT_EQ(h.decryptScalar(chain[i]), expected[i])
                    << "chain decrypt: iter " << iter << " ct " << i;
            }
        }
    }
    for (std::size_t i = 0; i < kChain; ++i)
        EXPECT_EQ(h.decryptScalar(chain[i]), expected[i]);
    EXPECT_GT(pimsys.totalModeledMs(), 0.0);
}

template <typename T>
class DifferentialWidths : public ::testing::Test
{
};

using DWidths = ::testing::Types<WideInt<1>, WideInt<2>, WideInt<4>>;
TYPED_TEST_SUITE(DifferentialWidths, DWidths);

TYPED_TEST(DifferentialWidths, RandomChainsDegree16)
{
    // 3 widths x 24 iters here + 3 widths x 32 iters below = 168
    // randomized iterations over six (width, degree) parameter sets.
    runCampaign<TypeParam::numLimbs>(16, kSeed, 24);
}

TYPED_TEST(DifferentialWidths, RandomChainsDegree32)
{
    runCampaign<TypeParam::numLimbs>(32, kSeed ^ 0xABCDEFull, 32);
}

} // namespace
} // namespace pimhe

/**
 * @file
 * Tests for the symbolic race prover: every shipped kernel must prove
 * race-free over the whole (tasklet count x parameter) grid, seeded
 * races must be flagged with their exact symbolic witness, the static
 * proof must subsume what the dynamic checker catches on racy kernels
 * (and flag configurations no test executes), and the suppression
 * audit must produce all three verdicts.
 */

#include <gtest/gtest.h>

#include "analysis/symbolic.h"
#include "pim/dpu.h"
#include "pimhe/kernel_registry.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using namespace pimhe::pimhe_kernels;

// ----- clean direction: the shipped grid proves race-free -----

TEST(Symbolic, EveryRegisteredKernelProvesRaceFree)
{
    const DpuConfig cfg;
    const analysis::SymbolicProver prover(cfg.maxTasklets);
    for (const auto &family : kernelRegistry()) {
        const auto plans = family.plans(cfg);
        ASSERT_FALSE(plans.empty()) << family.factory;
        for (const auto &plan : plans) {
            const auto report = prover.prove(plan.footprint);
            EXPECT_TRUE(report.ok())
                << family.factory << " [" << plan.params << "]\n"
                << report.summary();
            EXPECT_TRUE(report.modeled) << family.factory;
            EXPECT_EQ(report.maxTasklets,
                      std::min(cfg.maxTasklets,
                               plan.footprint.maxTasklets))
                << family.factory << " did not cover the full range";
            EXPECT_GT(report.pairsChecked, 0u) << family.factory;
        }
    }
}

TEST(Symbolic, UnmodeledFootprintNeverPasses)
{
    analysis::KernelFootprint fp;
    fp.kernel = "no-model";
    fp.maxTasklets = 24;
    const auto report = analysis::SymbolicProver().prove(fp);
    EXPECT_FALSE(report.modeled);
    EXPECT_FALSE(report.ok());
}

// ----- seeded direction: exact witnesses -----

/** Race 1: unaligned-stride DMA tails — each tasklet writes 16 bytes
 *  at stride 8, so adjacent tasklets overlap by 8. */
TEST(Symbolic, SeededDmaTailOverlapWitness)
{
    analysis::KernelFootprint fp;
    fp.kernel = "seeded-dma-tail";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned t, unsigned) {
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Mram, 0, t * 8ull, t * 8ull + 16, true,
             "dma tail"}};
    };
    const auto report = analysis::SymbolicProver().proveAt(fp, 2);
    ASSERT_FALSE(report.ok());
    ASSERT_EQ(report.totalRaces, 1u);
    const auto &w = report.witnesses.at(0);
    EXPECT_EQ(w.space, analysis::Space::Mram);
    EXPECT_EQ(w.tasklets, 2u);
    EXPECT_EQ(w.t1, 0u);
    EXPECT_EQ(w.t2, 1u);
    EXPECT_EQ(w.begin, 8u);
    EXPECT_EQ(w.end, 16u);
    EXPECT_TRUE(w.writeWrite);
    EXPECT_NE(w.describe().find("t=0 vs t=1, N=2, overlap [8, 16)"),
              std::string::npos)
        << w.describe();
}

/** Race 2: shared WRAM scratch — every tasklet writes word 0. */
TEST(Symbolic, SeededSharedWramScratchWitness)
{
    analysis::KernelFootprint fp;
    fp.kernel = "seeded-wram-scratch";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned, unsigned) {
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Wram, 0, 0, 8, true, "scratch"}};
    };
    const auto report = analysis::SymbolicProver().prove(fp);
    ASSERT_FALSE(report.ok());
    // N tasklets -> C(N, 2) pairs, summed over N = 2..24.
    std::uint64_t expect = 0;
    for (unsigned n = 2; n <= 24; ++n)
        expect += n * (n - 1) / 2;
    EXPECT_EQ(report.totalRaces, expect);
    const auto &w = report.witnesses.at(0);
    EXPECT_EQ(w.space, analysis::Space::Wram);
    EXPECT_EQ(w.begin, 0u);
    EXPECT_EQ(w.end, 8u);
}

/** Race 3: staging without a barrier — tasklet 0's table write shares
 *  epoch 0 with everyone's reads (read/write, not write/write). */
TEST(Symbolic, SeededMissingBarrierWitness)
{
    analysis::KernelFootprint fp;
    fp.kernel = "seeded-missing-barrier";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned t, unsigned) {
        std::vector<analysis::SymAccess> acc;
        if (t == 0)
            acc.push_back({analysis::Space::Wram, 0, 0, 64, true,
                           "table staging"});
        acc.push_back({analysis::Space::Wram, 0, 0, 64, false,
                       "table read"});
        return acc;
    };
    const auto report = analysis::SymbolicProver().proveAt(fp, 4);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.totalRaces, 3u); // t=0's write vs t=1..3's reads
    const auto &w = report.witnesses.at(0);
    EXPECT_FALSE(w.writeWrite);
    EXPECT_EQ(w.t1, 0u);
    EXPECT_EQ(w.epoch, 0u);
    EXPECT_EQ(w.begin, 0u);
    EXPECT_EQ(w.end, 64u);

    // The same accesses separated by a barrier epoch are race-free.
    analysis::KernelFootprint fixed = fp;
    fixed.taskletAccess = [](unsigned t, unsigned) {
        std::vector<analysis::SymAccess> acc;
        if (t == 0)
            acc.push_back({analysis::Space::Wram, 0, 0, 64, true,
                           "table staging"});
        acc.push_back({analysis::Space::Wram, 1, 0, 64, false,
                       "table read"});
        return acc;
    };
    EXPECT_TRUE(analysis::SymbolicProver().prove(fixed).ok());
}

/** Race 4: the hazard alignedTaskletRange exists to prevent — the
 *  plain taskletRange split at 4-byte elements makes adjacent
 *  tasklets' rounded-up DMA tails share an MRAM word. */
TEST(Symbolic, SeededUnalignedSplitModelWitness)
{
    constexpr std::uint32_t kElems = 101, kEb = 4;
    analysis::KernelFootprint fp;
    fp.kernel = "seeded-unaligned-split";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned t, unsigned N) {
        const auto [begin, end] = taskletRange(kElems, t, N);
        if (begin >= end)
            return std::vector<analysis::SymAccess>{};
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Mram, 0, begin * std::uint64_t(kEb),
             (end * std::uint64_t(kEb) + 7) / 8 * 8, true,
             "result (unaligned split)"}};
    };
    const auto report = analysis::SymbolicProver().prove(fp);
    ASSERT_FALSE(report.ok());
    // At N=11: 101 = 9*11 + 2, so the t=2/t=3 boundary falls at the
    // odd element 29 -> byte 116, and t=2's DMA tail rounds up to 120
    // while t=3 starts writing at 116: both own [116, 120).
    bool found = false;
    for (const auto &w : report.witnesses)
        if (w.tasklets == 11 && w.t1 == 2 && w.t2 == 3 &&
            w.begin == 116 && w.end == 120)
            found = true;
    EXPECT_TRUE(found) << report.summary();

    // The aligned split the shipped kernels use discharges it.
    analysis::KernelFootprint fixed = fp;
    fixed.taskletAccess = [](unsigned t, unsigned N) {
        const auto [begin, end] =
            alignedTaskletRange(kElems, kEb, t, N);
        if (begin >= end)
            return std::vector<analysis::SymAccess>{};
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Mram, 0, begin * std::uint64_t(kEb),
             (end * std::uint64_t(kEb) + 7) / 8 * 8, true,
             "result (aligned split)"}};
    };
    EXPECT_TRUE(analysis::SymbolicProver().prove(fixed).ok());
}

/** Race 5: WRAM buffer stride too small — a 3-buffer layout laid out
 *  with a 2-buffer stride makes tasklet t's OUT slot alias tasklet
 *  t+1's A slot. */
TEST(Symbolic, SeededWramStrideTooSmallWitness)
{
    constexpr std::uint64_t kChunk = 256;
    analysis::KernelFootprint fp;
    fp.kernel = "seeded-wram-stride";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned t, unsigned) {
        const std::uint64_t wbase = t * 2 * kChunk; // bug: 3 buffers
        std::vector<analysis::SymAccess> acc;
        for (unsigned i = 0; i < 3; ++i)
            acc.push_back({analysis::Space::Wram, 0,
                           wbase + i * kChunk,
                           wbase + (i + 1) * kChunk, true, "buffer"});
        return acc;
    };
    const auto report = analysis::SymbolicProver().proveAt(fp, 2);
    ASSERT_FALSE(report.ok());
    const auto &w = report.witnesses.at(0);
    EXPECT_EQ(w.t1, 0u);
    EXPECT_EQ(w.t2, 1u);
    EXPECT_EQ(w.begin, 2 * kChunk);
    EXPECT_EQ(w.end, 3 * kChunk);
}

/** Race 6: an in-place reduce round folding MORE pairs than the fold
 *  offset — the result rows run into the operand-B rows. */
TEST(Symbolic, SeededOverfoldedReduceWitness)
{
    const DpuConfig cfg;
    // 8 slices of 64 elements at 8-byte elements; a correct 8->4 fold
    // adds 4 pairs. Folding 6 pairs writes past the B offset.
    VecKernelParams kp;
    kp.limbs = 2;
    kp.elems = 6 * 64;        // pairs = 6 (bug: > hh = 4)
    kp.mramA = 0;
    kp.mramB = 4 * 64 * 8;    // hh * sliceBytes
    kp.mramOut = 0;
    auto fp = reduceRoundFootprint(kp, cfg, 12);
    const auto report =
        analysis::SymbolicProver(cfg.maxTasklets).prove(fp);
    ASSERT_FALSE(report.ok()) << "overfolded round must race";
    bool crosses_fold = false;
    for (const auto &w : report.witnesses)
        if (w.space == analysis::Space::Mram && w.begin >= kp.mramB)
            crosses_fold = true;
    EXPECT_TRUE(crosses_fold) << report.summary();

    // The correct round (pairs <= hh) proves clean — the disjointness
    // claim in reduceRoundFootprint's comment, machine-checked.
    kp.elems = 4 * 64;
    EXPECT_TRUE(analysis::SymbolicProver(cfg.maxTasklets)
                    .prove(reduceRoundFootprint(kp, cfg, 12))
                    .ok());
}

/** Race 7: convolution output rows off by one — each tasklet writes
 *  one row past its range, colliding with the next tasklet's first. */
TEST(Symbolic, SeededConvRowOverrunWitness)
{
    constexpr std::uint32_t kRows = 32, kAcc = 24;
    analysis::KernelFootprint fp;
    fp.kernel = "seeded-conv-overrun";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned t, unsigned N) {
        const auto [tb, te] = taskletRange(kRows, t, N);
        if (tb >= te)
            return std::vector<analysis::SymAccess>{};
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Mram, 1, tb * std::uint64_t(kAcc),
             (te + 1) * std::uint64_t(kAcc), true, "result rows"}};
    };
    const auto report = analysis::SymbolicProver().proveAt(fp, 4);
    ASSERT_FALSE(report.ok());
    const auto &w = report.witnesses.at(0);
    EXPECT_EQ(w.t1 + 1, w.t2);
    EXPECT_EQ(w.end - w.begin, kAcc);
}

// ----- cross-validation against the dynamic checker -----

DpuConfig
checkedCfg()
{
    DpuConfig cfg;
    cfg.checker.enabled = true;
    return cfg;
}

/** True when some symbolic witness covers the dynamic conflict: same
 *  space, overlapping byte range. The proof must come from proveAt()
 *  at the same tasklet count so its witness list is not elided by the
 *  cross-N cap. */
bool
covered(const ConflictRecord &c, const analysis::SymbolicReport &proof)
{
    for (const auto &w : proof.witnesses) {
        const auto wspace = w.space == analysis::Space::Wram
                                ? MemSpace::Wram
                                : MemSpace::Mram;
        if (wspace == c.space && w.begin < c.end && c.begin < w.end)
            return true;
    }
    return false;
}

/**
 * Static-subsumes-dynamic on seeded-racy kernels: run each racy
 * kernel under the dynamic checker, then require every recorded
 * conflict to be covered by a symbolic witness of the matching model.
 * (DMA sizes in the racy kernels stay 8-aligned — chargeDma asserts
 * sizes; only the overlap is wrong.)
 */
TEST(SymbolicCrossValidation, StaticFlagsEveryDynamicRace)
{
    struct RacyKernel
    {
        const char *name;
        Kernel kernel;
        analysis::TaskletAccessFn model;
    };
    const std::vector<RacyKernel> racy = {
        {"mram-dma-overlap",
         [](TaskletCtx &ctx) {
             // Disjoint WRAM staging, overlapping 16-byte MRAM writes
             // at stride 8.
             ctx.mramWrite(ctx.id() * 64, 4096 + ctx.id() * 8, 16);
         },
         [](unsigned t, unsigned) {
             return std::vector<analysis::SymAccess>{
                 {analysis::Space::Wram, 0, t * 64ull, t * 64ull + 16,
                  false, "staging"},
                 {analysis::Space::Mram, 0, 4096 + t * 8ull,
                  4096 + t * 8ull + 16, true, "dma"}};
         }},
        {"wram-shared-store",
         [](TaskletCtx &ctx) { ctx.wramStore32(64, ctx.id()); },
         [](unsigned, unsigned) {
             return std::vector<analysis::SymAccess>{
                 {analysis::Space::Wram, 0, 64, 68, true, "slot"}};
         }},
        {"staging-missing-barrier",
         [](TaskletCtx &ctx) {
             if (ctx.id() == 0)
                 ctx.mramRead(0, 0, 64); // writes WRAM [0, 64)
             ctx.wramLoad32(4 * ctx.id());
         },
         [](unsigned t, unsigned) {
             std::vector<analysis::SymAccess> acc;
             if (t == 0)
                 acc.push_back({analysis::Space::Wram, 0, 0, 64, true,
                                "staging"});
             acc.push_back({analysis::Space::Wram, 0, 4ull * t,
                            4ull * t + 4, false, "read"});
             return acc;
         }},
    };

    for (const auto &rk : racy) {
        for (const unsigned tasklets : {2u, 4u, 11u}) {
            Dpu dpu(checkedCfg());
            const auto stats = dpu.run(tasklets, rk.kernel);
            ASSERT_GT(stats.conflicts.totalConflicts, 0u)
                << rk.name << " did not race dynamically";

            analysis::KernelFootprint fp;
            fp.kernel = rk.name;
            fp.maxTasklets = 24;
            fp.taskletAccess = rk.model;
            // The full-sweep proof must reject the kernel...
            ASSERT_FALSE(analysis::SymbolicProver().prove(fp).ok())
                << rk.name;
            // ...and the per-N proof must witness every conflict the
            // dynamic checker recorded at this tasklet count.
            const auto proof =
                analysis::SymbolicProver().proveAt(fp, tasklets);
            ASSERT_FALSE(proof.ok()) << rk.name;
            for (const auto &c : stats.conflicts.conflicts)
                EXPECT_TRUE(covered(c, proof))
                    << rk.name << " @ " << tasklets
                    << " tasklets: dynamic conflict " << c.describe()
                    << " has no symbolic witness\n"
                    << proof.summary();
        }
    }
}

/** The prover covers configurations no dynamic test executes: a race
 *  that only appears above the tasklet counts any test runs. */
TEST(SymbolicCrossValidation, StaticFlagsUnexecutedConfigs)
{
    // Disjoint for N <= 16 (the largest count the dynamic tests run),
    // racy at N >= 17: 17 tasklets x 4096 bytes wrap the 64 KB WRAM.
    analysis::KernelFootprint fp;
    fp.kernel = "wide-slots";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned t, unsigned) {
        const std::uint64_t base = (t * 4096ull) % 65536;
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Wram, 0, base, base + 4096, true,
             "slot"}};
    };
    const analysis::SymbolicProver prover;
    for (const unsigned n : {1u, 11u, 16u})
        EXPECT_TRUE(prover.proveAt(fp, n).ok()) << n;
    const auto report = prover.prove(fp);
    EXPECT_FALSE(report.ok());
    bool above_tested = false;
    for (const auto &w : report.witnesses)
        if (w.tasklets >= 17)
            above_tested = true;
    EXPECT_TRUE(above_tested) << report.summary();
}

// ----- suppression audit -----

TEST(SuppressionAudit, DischargedWhenProverCleanAndNoHits)
{
    // A justified-looking suppression over a range the kernel never
    // actually conflicts on: zero hits + clean proof = removable.
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        if (ctx.id() == 0) // the allow-list is checker-global
            ctx.checkerAllowRange(MemSpace::Wram, 256, 64,
                                  "claimed: externally synchronised");
        ctx.wramStore32(ctx.id() * 8, 1); // disjoint anyway
    });
    ASSERT_EQ(stats.conflicts.suppressions.size(), 1u);
    EXPECT_EQ(stats.conflicts.suppressions[0].hits, 0u);

    analysis::KernelFootprint fp;
    fp.kernel = "disjoint-stores";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned t, unsigned) {
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Wram, 0, t * 8ull, t * 8ull + 4, true,
             "slot"}};
    };
    const auto proof = analysis::SymbolicProver().prove(fp);
    ASSERT_TRUE(proof.ok());
    const auto findings = auditSuppressions(stats.conflicts, proof);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].verdict,
              analysis::SuppressionVerdict::Discharged);
    EXPECT_NE(findings[0].describe().find("discharged"),
              std::string::npos)
        << findings[0].describe();
}

TEST(SuppressionAudit, MasksProvenRaceWhenWitnessInsideRange)
{
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        if (ctx.id() == 0) // the allow-list is checker-global
            ctx.checkerAllowRange(MemSpace::Wram, 64, 4,
                                  "claimed: benign shared slot");
        ctx.wramStore32(64, ctx.id()); // a real write/write race
    });
    ASSERT_EQ(stats.conflicts.suppressions.size(), 1u);
    EXPECT_EQ(stats.conflicts.suppressions[0].hits, 1u);
    EXPECT_EQ(stats.conflicts.suppressedConflicts, 1u);

    analysis::KernelFootprint fp;
    fp.kernel = "shared-slot";
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned, unsigned) {
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Wram, 0, 64, 68, true, "slot"}};
    };
    const auto proof = analysis::SymbolicProver().prove(fp);
    ASSERT_FALSE(proof.ok());
    const auto findings = auditSuppressions(stats.conflicts, proof);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].verdict,
              analysis::SuppressionVerdict::MasksProvenRace);
}

TEST(SuppressionAudit, UnresolvedWhenHitsButNoWitness)
{
    // Runtime hits on a range the (coarse) model does not exhibit:
    // the audit must keep the suppression rather than discharge it.
    Dpu dpu(checkedCfg());
    const auto stats = dpu.run(2, [](TaskletCtx &ctx) {
        if (ctx.id() == 0) // the allow-list is checker-global
            ctx.checkerAllowRange(MemSpace::Wram, 128, 4,
                                  "spinlock word, ordered by acquire");
        ctx.wramStore32(128, ctx.id());
    });
    ASSERT_EQ(stats.conflicts.suppressions.size(), 1u);
    ASSERT_EQ(stats.conflicts.suppressions[0].hits, 1u);

    analysis::KernelFootprint fp;
    fp.kernel = "spinlock-model"; // model omits the lock word
    fp.maxTasklets = 24;
    fp.taskletAccess = [](unsigned t, unsigned) {
        return std::vector<analysis::SymAccess>{
            {analysis::Space::Wram, 0, t * 8ull, t * 8ull + 4, true,
             "slot"}};
    };
    const auto proof = analysis::SymbolicProver().prove(fp);
    ASSERT_TRUE(proof.ok());
    const auto findings = auditSuppressions(stats.conflicts, proof);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].verdict,
              analysis::SuppressionVerdict::Unresolved);
}

/** No shipped kernel carries a checkerAllowRange() suppression: the
 *  registry sweep proves them race-free without exemptions, so clean
 *  runs must report zero suppressions to audit. */
TEST(SuppressionAudit, ShippedKernelsCarryNoSuppressions)
{
    Dpu dpu(checkedCfg());
    const auto p = [] {
        VecKernelParams kp;
        kp.elems = 513;
        kp.limbs = 1;
        kp.k = 27;
        kp.c = 2047;
        kp.q = {(1u << 27) - 2047, 0, 0, 0};
        const std::uint64_t arr = (513 * 4 + 7) / 8 * 8;
        kp.mramA = 0;
        kp.mramB = arr;
        kp.mramOut = 2 * arr;
        return kp;
    }();
    const auto stats = dpu.run(11, makeVecAddModQKernel(p));
    EXPECT_TRUE(stats.conflicts.clean());
    EXPECT_TRUE(stats.conflicts.suppressions.empty());
    EXPECT_EQ(stats.conflicts.suppressedConflicts, 0u);
}

} // namespace
} // namespace pimhe

/**
 * @file
 * Differential tests of the device-resident ciphertext layer: every
 * resident-mode result must be bit-exact with the staged path and the
 * host evaluator — with the cache cold, warm, and under forced LRU
 * eviction churn — and the whole layer must honour the simulator's
 * determinism contract at any host thread count. All launches run
 * with the static pre-launch verifier armed and the conflict checker
 * in fail-fast mode, so a footprint or race regression aborts the
 * test instead of corrupting a result.
 */

#include <gtest/gtest.h>

#include "pimhe/orchestrator.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::BfvHarness;

pim::SystemConfig
residentSystem(std::size_t dpus, std::uint64_t capacity_bytes = 0)
{
    pim::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.verifyBeforeLaunch = true;
    cfg.dpu.checker.enabled = true;
    cfg.dpu.checker.failFast = true;
    cfg.residentCapacityBytes = capacity_bytes;
    return cfg;
}

template <typename T>
class ResidentWidths : public ::testing::Test
{
};

using RWidths = ::testing::Types<WideInt<1>, WideInt<2>, WideInt<4>>;
TYPED_TEST_SUITE(ResidentWidths, RWidths);

TYPED_TEST(ResidentWidths, AddAndMulBitExactWithHost)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h(16);
    PimHeSystem<N> pimsys(h.ctx, residentSystem(3), 3, 12);

    const auto a = h.encryptScalar(11);
    const auto b = h.encryptScalar(5);
    const auto ra = pimsys.makeResident(a);
    const auto rb = pimsys.makeResident(b);

    const auto sum = pimsys.materialize(pimsys.addResident(ra, rb));
    const auto host_sum = h.eval.add(a, b);
    for (std::size_t c = 0; c < host_sum.size(); ++c)
        EXPECT_TRUE(host_sum[c] == sum[c]) << "component " << c;
    EXPECT_EQ(h.decryptScalar(sum), 16u % h.params.t);

    const auto prod = pimsys.materialize(pimsys.mulResident(ra, rb));
    const auto &red = h.ctx.ring().reducer();
    for (std::size_t c = 0; c < a.size(); ++c)
        for (std::size_t j = 0; j < h.params.n; ++j)
            EXPECT_EQ(prod[c][j], red.mulMod(a[c][j], b[c][j]));
}

TYPED_TEST(ResidentWidths, FusedAddMulMatchesChainedOps)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h(16);
    PimHeSystem<N> pimsys(h.ctx, residentSystem(2), 2, 11);

    const auto a = h.encryptScalar(3);
    const auto b = h.encryptScalar(9);
    const auto c = h.encryptScalar(7);
    const auto ra = pimsys.makeResident(a);
    const auto rb = pimsys.makeResident(b);
    const auto rc = pimsys.makeResident(c);

    const std::size_t launches_before = pimsys.dpuSet().launches().size();
    const auto fused =
        pimsys.materialize(pimsys.fusedAddMulResident(ra, rb, rc));
    // The whole (a + b) * c chain must be one kernel launch.
    EXPECT_EQ(pimsys.dpuSet().launches().size(), launches_before + 1);

    const auto host_sum = h.eval.add(a, b);
    const auto &red = h.ctx.ring().reducer();
    for (std::size_t cc = 0; cc < a.size(); ++cc)
        for (std::size_t j = 0; j < h.params.n; ++j)
            EXPECT_EQ(fused[cc][j],
                      red.mulMod(host_sum[cc][j], c[cc][j]))
                << "comp " << cc << " coeff " << j;
}

TYPED_TEST(ResidentWidths, ReduceMatchesStagedAndHost)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h(16);

    for (const int count : {1, 2, 7, 8}) {
        std::vector<Ciphertext<N>> cts;
        std::uint64_t expect = 0;
        for (int i = 0; i < count; ++i) {
            cts.push_back(h.encryptScalar(i + 1));
            expect += i + 1;
        }
        // Separate systems so per-system transfer totals compare the
        // two strategies on identical inputs.
        PimHeSystem<N> resident(h.ctx, residentSystem(4), 4, 12);
        PimHeSystem<N> staged(h.ctx, residentSystem(4), 4, 12);
        const auto via_resident = resident.reduceCiphertexts(cts);
        const auto via_staged = staged.reduceCiphertextsStaged(cts);
        for (std::size_t c = 0; c < via_staged.size(); ++c)
            EXPECT_TRUE(via_staged[c] == via_resident[c])
                << "count " << count << " comp " << c;
        EXPECT_EQ(h.decryptScalar(via_resident),
                  expect % h.params.t)
            << "count " << count;
        if (count > 2) {
            // The point of the tentpole: once the tree has more than
            // one round, the resident fold moves strictly fewer bus
            // bytes than re-staging every round. (At count == 2 both
            // strategies upload two and download one — identical.)
            EXPECT_LT(resident.transferTotals().busBytes(),
                      staged.transferTotals().busBytes())
                << "count " << count;
        }
    }
}

TYPED_TEST(ResidentWidths, EvictionChurnPreservesBitExactness)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h(16);
    // Budget fits only ~3 ciphertext regions (2 comps x 16 coeffs at
    // N limbs, split over 2 DPUs), so chaining ops over 4 operands
    // forces LRU eviction — including dirty evictions of op outputs.
    const std::uint64_t slice =
        ((2 * 16 + 1) / 2 * N * 4 + 7) / 8 * 8;
    PimHeSystem<N> pimsys(h.ctx, residentSystem(2, 3 * slice), 2, 12);

    std::vector<Ciphertext<N>> cts;
    std::vector<ResidentCiphertext> handles;
    for (int i = 0; i < 4; ++i) {
        cts.push_back(h.encryptScalar(10 + i));
        handles.push_back(pimsys.makeResident(cts.back()));
    }
    // Pairwise sums: each op touches two operands plus an output, so
    // something must always be evicted to make room.
    std::vector<ResidentCiphertext> sums;
    for (int i = 0; i < 4; ++i)
        sums.push_back(pimsys.addResident(handles[static_cast<std::size_t>(i)],
                                          handles[(i + 1) % 4u]));
    EXPECT_GT(pimsys.residentStats().evictions, 0u);

    for (int i = 0; i < 4; ++i) {
        const auto got = pimsys.materialize(sums[static_cast<std::size_t>(i)]);
        const auto want = h.eval.add(cts[static_cast<std::size_t>(i)],
                                     cts[(i + 1) % 4u]);
        for (std::size_t c = 0; c < want.size(); ++c)
            EXPECT_TRUE(want[c] == got[c])
                << "sum " << i << " comp " << c;
    }
    // Op outputs start device-only, so at least one eviction above
    // had to pay a download to preserve its value.
    EXPECT_GT(pimsys.residentStats().dirtyEvictions, 0u);
}

TEST(Resident, CacheHitsAvoidReuploads)
{
    BfvHarness<2> h(16);
    PimHeSystem<2> pimsys(h.ctx, residentSystem(2), 2, 12);

    const auto ra = pimsys.makeResident(h.encryptScalar(1));
    const auto rb = pimsys.makeResident(h.encryptScalar(2));
    pimsys.addResident(ra, rb);
    const auto &s1 = pimsys.residentStats();
    EXPECT_EQ(s1.misses, 2u); // first device use uploads both
    EXPECT_EQ(s1.hits, 0u);
    const std::uint64_t uploaded_once =
        pimsys.transferTotals().uploadedBytes;

    pimsys.mulResident(ra, rb);
    const auto &s2 = pimsys.residentStats();
    EXPECT_EQ(s2.misses, 2u); // nothing new uploaded
    EXPECT_EQ(s2.hits, 2u);
    EXPECT_GT(s2.bytesAvoided, 0u);
    EXPECT_EQ(pimsys.transferTotals().uploadedBytes, uploaded_once);
    EXPECT_EQ(pimsys.transferTotals().residentBytesReused,
              s2.bytesAvoided);
}

TEST(Resident, ReduceIsSingleUploadAndDownload)
{
    BfvHarness<2> h(16);
    PimHeSystem<2> pimsys(h.ctx, residentSystem(4), 4, 12);
    std::vector<Ciphertext<2>> cts;
    for (int i = 0; i < 8; ++i)
        cts.push_back(h.encryptScalar(i));

    pimsys.reduceCiphertexts(cts);
    const auto &xfer = pimsys.transferTotals();
    // One packed upload per DPU, log2(8) = 3 launches, one download
    // of the result slice per DPU.
    EXPECT_EQ(xfer.uploads, 4u);
    EXPECT_EQ(xfer.downloads, 4u);
    EXPECT_EQ(pimsys.dpuSet().launches().size(), 3u);
    // Downloads cover one ciphertext, uploads eight.
    EXPECT_LT(8 * xfer.downloadedBytes, 9 * xfer.uploadedBytes);
}

TEST(Resident, StagedPathCoexistsWithResidentEntries)
{
    // The staged elementwise path draws scratch from the cache arena,
    // so running it while entries are resident must neither corrupt
    // them nor break when scratch forces an eviction.
    BfvHarness<2> h(16);
    PimHeSystem<2> pimsys(h.ctx, residentSystem(2), 2, 12);
    const auto a = h.encryptScalar(21);
    const auto ra = pimsys.makeResident(a);
    pimsys.addResident(ra, ra); // upload a

    std::vector<Ciphertext<2>> xs = {h.encryptScalar(2)};
    std::vector<Ciphertext<2>> ys = {h.encryptScalar(3)};
    const auto sums = pimsys.addCiphertextVectors(xs, ys);
    EXPECT_EQ(h.decryptScalar(sums[0]), 5u);

    const auto back = pimsys.materialize(ra);
    for (std::size_t c = 0; c < a.size(); ++c)
        EXPECT_TRUE(a[c] == back[c]) << "component " << c;
}

TEST(ResidentDeathTest, UseAfterDropPanics)
{
    BfvHarness<2> h(16);
    PimHeSystem<2> pimsys(h.ctx, residentSystem(1), 1, 4);
    const auto ra = pimsys.makeResident(h.encryptScalar(1));
    pimsys.dropResident(ra);
    EXPECT_DEATH(pimsys.materialize(ra), "dropped/consumed");
}

/** Everything a resident workload models, for cross-thread-count
 *  bit-identity comparison. */
struct ResidentSnapshot
{
    std::vector<pim::LaunchStats> launches;
    pim::TransferTotals xfer;
    ResidentCacheStats cache;
    Ciphertext<2> result;
};

ResidentSnapshot
runResidentWorkload(std::size_t host_threads)
{
    BfvHarness<2> h(16);
    pim::SystemConfig cfg = residentSystem(4);
    cfg.hostThreads = host_threads;
    PimHeSystem<2> pimsys(h.ctx, cfg, 4, 12);

    std::vector<Ciphertext<2>> cts;
    for (int i = 0; i < 7; ++i)
        cts.push_back(h.encryptScalar(i + 3));
    const auto total = pimsys.reduceResident(cts);
    const auto ra = pimsys.makeResident(cts[0]);
    const auto fused = pimsys.fusedAddMulResident(total, ra, ra);

    ResidentSnapshot snap;
    snap.result = pimsys.materialize(fused);
    snap.launches = pimsys.dpuSet().launches();
    snap.xfer = pimsys.transferTotals();
    snap.cache = pimsys.residentStats();
    return snap;
}

TEST(Resident, BitIdenticalAcrossHostThreadCounts)
{
    const ResidentSnapshot ref = runResidentWorkload(1);
    for (const std::size_t threads : {8u, 16u}) {
        const ResidentSnapshot got = runResidentWorkload(threads);
        ASSERT_EQ(ref.launches.size(), got.launches.size());
        for (std::size_t i = 0; i < ref.launches.size(); ++i) {
            const auto &a = ref.launches[i];
            const auto &b = got.launches[i];
            EXPECT_EQ(a.maxCycles, b.maxCycles) << "launch " << i;
            EXPECT_EQ(a.kernelMs, b.kernelMs) << "launch " << i;
            EXPECT_EQ(a.hostToDpuMs, b.hostToDpuMs) << "launch " << i;
            EXPECT_EQ(a.dpuToHostMs, b.dpuToHostMs) << "launch " << i;
            ASSERT_EQ(a.dpus.size(), b.dpus.size());
            for (std::size_t d = 0; d < a.dpus.size(); ++d) {
                EXPECT_EQ(a.dpus[d].cycles, b.dpus[d].cycles);
                EXPECT_EQ(a.dpus[d].totalInstructions(),
                          b.dpus[d].totalInstructions());
                EXPECT_TRUE(b.dpus[d].conflicts.clean());
            }
        }
        EXPECT_EQ(ref.xfer.uploadedBytes, got.xfer.uploadedBytes);
        EXPECT_EQ(ref.xfer.downloadedBytes, got.xfer.downloadedBytes);
        EXPECT_EQ(ref.xfer.residentBytesReused,
                  got.xfer.residentBytesReused);
        EXPECT_EQ(ref.xfer.uploadModeledMs, got.xfer.uploadModeledMs);
        EXPECT_EQ(ref.xfer.downloadModeledMs,
                  got.xfer.downloadModeledMs);
        EXPECT_EQ(ref.cache.hits, got.cache.hits);
        EXPECT_EQ(ref.cache.misses, got.cache.misses);
        EXPECT_EQ(ref.cache.evictions, got.cache.evictions);
        for (std::size_t c = 0; c < ref.result.size(); ++c)
            EXPECT_TRUE(ref.result[c] == got.result[c])
                << "threads " << threads << " comp " << c;
    }
}

// ----- multi-DPU convolution -----

TYPED_TEST(ResidentWidths, ShardedConvolverMatchesSingleDpu)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    BfvHarness<N> h(16);
    Polynomial<N> a(h.params.n), b(h.params.n);
    Rng rng(0xAB5EED);
    for (std::size_t i = 0; i < h.params.n; ++i) {
        a[i] = pimhe::testing::randomBelow<N>(rng, h.params.q);
        b[i] = pimhe::testing::randomBelow<N>(rng, h.params.q);
    }

    const PimConvolver<N> single(h.ctx.ring(), residentSystem(1), 12,
                                 1);
    const auto want = single.convolveCentered(a, b);
    for (const std::size_t dpus : {3u, 8u}) {
        const PimConvolver<N> sharded(h.ctx.ring(),
                                      residentSystem(dpus), 12, dpus);
        const auto got = sharded.convolveCentered(a, b);
        ASSERT_EQ(want.size(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_TRUE(want[i] == got[i])
                << "dpus " << dpus << " coeff " << i;
    }
}

TEST(Resident, ShardedConvolverBitExactBfvMultiply)
{
    BfvHarness<4> h(16);
    const auto a = h.encryptScalar(6);
    const auto b = h.encryptScalar(7);
    const auto host = h.eval.multiply(a, b);

    h.ctx.setConvolver(std::make_unique<PimConvolver<4>>(
        h.ctx.ring(), residentSystem(8), 12, 8));
    const auto pim = h.eval.multiply(a, b);
    ASSERT_EQ(host.size(), pim.size());
    for (std::size_t c = 0; c < host.size(); ++c)
        EXPECT_TRUE(host[c] == pim[c]) << "component " << c;
    EXPECT_EQ(h.decryptScalar(pim), 42 % h.params.t);
}

TEST(Resident, ShardedConvolverSplitsKernelTime)
{
    // Row sharding must cut the critical-path kernel time: 8 DPUs
    // each convolve 1/8th of the output rows.
    BfvHarness<2> h(32);
    Polynomial<2> a(h.params.n), b(h.params.n);
    Rng rng(0xFEED);
    for (std::size_t i = 0; i < h.params.n; ++i) {
        a[i] = pimhe::testing::randomBelow<2>(rng, h.params.q);
        b[i] = pimhe::testing::randomBelow<2>(rng, h.params.q);
    }
    const PimConvolver<2> k1(h.ctx.ring(), residentSystem(1), 12, 1);
    const PimConvolver<2> k8(h.ctx.ring(), residentSystem(8), 12, 8);
    k1.convolveCentered(a, b);
    k8.convolveCentered(a, b);
    EXPECT_LT(k8.dpuSet().lastLaunch().kernelMs,
              k1.dpuSet().lastLaunch().kernelMs);
}

} // namespace
} // namespace pimhe

/**
 * @file
 * Validation of the analytic PIM cost model against exact simulation
 * (DESIGN.md tier-2 vs tier-1 requirement: within 2%).
 */

#include <gtest/gtest.h>

#include "pimhe/cost_model.h"
#include "test_util.h"

namespace pimhe {
namespace {

using perf::OpKind;

struct FitCase
{
    OpKind op;
    std::size_t limbs;
    std::size_t elems;
};

class CostModelFit : public ::testing::TestWithParam<FitCase>
{
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, CostModelFit,
    ::testing::Values(FitCase{OpKind::VecAdd, 1, 5000},
                      FitCase{OpKind::VecAdd, 2, 7777},
                      FitCase{OpKind::VecAdd, 4, 3001},
                      FitCase{OpKind::VecAdd, 4, 20011},
                      FitCase{OpKind::VecMul, 1, 4099},
                      FitCase{OpKind::VecMul, 2, 2048},
                      FitCase{OpKind::VecMul, 4, 1500},
                      FitCase{OpKind::VecMul, 4, 9973}),
    [](const auto &tpi) {
        return std::string(tpi.param.op == OpKind::VecAdd ? "add"
                                                          : "mul") +
               "L" + std::to_string(tpi.param.limbs) + "e" +
               std::to_string(tpi.param.elems);
    });

TEST_P(CostModelFit, MatchesExactSimulationWithin2Percent)
{
    const auto [op, limbs, elems] = GetParam();
    pim::SystemConfig one;
    one.numDpus = 1;
    PimCostModel model(one, 12);
    const double exact =
        model.simulateElementwiseCycles(op, limbs, elems);
    const double est =
        model.elementwiseMs(op, limbs, elems).computeMs *
        one.dpu.clockMhz * 1e3;
    EXPECT_NEAR(est / exact, 1.0, 0.02)
        << "exact=" << exact << " est=" << est;
}

TEST(CostModel, ConvolutionFitMatchesSimulation)
{
    pim::SystemConfig one;
    one.numDpus = 1;
    PimCostModel model(one, 12);
    for (const std::size_t limbs : {1ul, 2ul, 4ul}) {
        for (const std::size_t n : {48ul, 96ul, 144ul}) {
            const double exact =
                model.simulateConvolutionCycles(n, limbs);
            const double est =
                model.convolutionMs(n, limbs, 1).computeMs *
                one.dpu.clockMhz * 1e3;
            EXPECT_NEAR(est / exact, 1.0, 0.02)
                << "limbs=" << limbs << " n=" << n;
        }
    }
}

TEST(CostModel, ScalesLinearlyInElements)
{
    PimCostModel model;
    const double t1 =
        model.elementwiseMs(OpKind::VecAdd, 4, 1 << 22).computeMs;
    const double t2 =
        model.elementwiseMs(OpKind::VecAdd, 4, 1 << 23).computeMs;
    EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(CostModel, MulCostsMoreThanAdd)
{
    PimCostModel model;
    for (const std::size_t limbs : {1ul, 2ul, 4ul}) {
        const double add =
            model.elementwiseMs(OpKind::VecAdd, limbs, 1 << 20)
                .totalMs();
        const double mul =
            model.elementwiseMs(OpKind::VecMul, limbs, 1 << 20)
                .totalMs();
        EXPECT_GT(mul, 5 * add) << "limbs " << limbs;
    }
}

TEST(CostModel, WiderElementsCostMore)
{
    PimCostModel model;
    const auto ms = [&](std::size_t limbs) {
        return model.elementwiseMs(OpKind::VecMul, limbs, 1 << 20)
            .computeMs;
    };
    EXPECT_LT(ms(1), ms(2));
    EXPECT_LT(ms(2), ms(4));
}

TEST(CostModel, MemoryCapacityProportionalScaling)
{
    // Key Takeaway 3: with work spread across all DPUs, doubling the
    // data on a full-size system doubles time; but doubling both data
    // and DPUs keeps time constant.
    pim::SystemConfig half = pim::paperSystem();
    half.numDpus = 1262;
    pim::SystemConfig full = pim::paperSystem();
    PimCostModel small(half, 12);
    PimCostModel big(full, 12);
    const std::size_t elems = 1262 * 4096;
    const double t_small =
        small.elementwiseMs(OpKind::VecMul, 4, elems).computeMs;
    const double t_big =
        big.elementwiseMs(OpKind::VecMul, 4, 2 * elems).computeMs;
    EXPECT_NEAR(t_big / t_small, 1.0, 0.02);
}

TEST(CostModel, ConstantTimeAcrossUserCounts)
{
    // The paper's Figure 2 observation: PIM time stays ~constant as
    // users grow, because utilisation grows with them.
    PimCostModel model;
    const double t640 =
        model.elementwiseMs(OpKind::VecAdd, 4, 640 * 2 * 4096, 640)
            .totalMs();
    const double t2560 =
        model.elementwiseMs(OpKind::VecAdd, 4, 2560 * 2 * 4096, 2560)
            .totalMs();
    EXPECT_LT(t2560 / t640, 2.1)
        << "per-DPU work should stay nearly flat below system size";
}

TEST(CostModel, TransfersAddVisibleTime)
{
    PimCostModel model;
    const std::size_t elems = 1 << 22;
    const double without =
        model.elementwiseMs(OpKind::VecAdd, 4, elems).totalMs();
    const double with =
        model.elementwiseWithTransfersMs(OpKind::VecAdd, 4, elems)
            .totalMs();
    EXPECT_GT(with, 2 * without)
        << "staging 128-bit operands dominates a cheap add kernel";
}

TEST(CostModel, TaskletSweepSaturatesAtEleven)
{
    // S1 experiment backing: per-DPU cycles stop improving at the
    // dispatch-interval tasklet count.
    pim::SystemConfig one;
    one.numDpus = 1;
    std::vector<double> cycles;
    for (const unsigned t : {2u, 4u, 8u, 11u, 16u}) {
        PimCostModel m(one, t);
        cycles.push_back(
            m.simulateElementwiseCycles(OpKind::VecMul, 4, 1056));
    }
    EXPECT_GT(cycles[0], 1.8 * cycles[1]);
    EXPECT_GT(cycles[1], 1.8 * cycles[2]);
    EXPECT_GT(cycles[2], 1.2 * cycles[3]);
    EXPECT_NEAR(cycles[4] / cycles[3], 1.0, 0.05);
}

TEST(CostModel, NativeMulAblationSpeedsUpMultiplication)
{
    pim::SystemConfig gen1 = pim::paperSystem();
    pim::SystemConfig gen2 = pim::paperSystem();
    gen2.dpu.nativeMul32 = true;
    PimCostModel m1(gen1, 12);
    PimCostModel m2(gen2, 12);
    const std::size_t elems = 1 << 22;
    const double t1 =
        m1.elementwiseMs(OpKind::VecMul, 4, elems).computeMs;
    const double t2 =
        m2.elementwiseMs(OpKind::VecMul, 4, elems).computeMs;
    EXPECT_GT(t1 / t2, 3.0)
        << "Key Takeaway 2: native multipliers change the story";
    // Addition is unaffected.
    const double a1 =
        m1.elementwiseMs(OpKind::VecAdd, 4, elems).computeMs;
    const double a2 =
        m2.elementwiseMs(OpKind::VecAdd, 4, elems).computeMs;
    EXPECT_NEAR(a1 / a2, 1.0, 0.01);
}

TEST(CostModel, DpusUsedClampsToSystem)
{
    PimCostModel model;
    EXPECT_EQ(model.dpusUsed(1), 1u);
    EXPECT_EQ(model.dpusUsed(100), 100u);
    EXPECT_EQ(model.dpusUsed(1 << 30), 2524u);
}

} // namespace
} // namespace pimhe

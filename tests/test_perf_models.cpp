/**
 * @file
 * Sanity and qualitative-ordering tests for the platform models: the
 * paper's key takeaways, asserted as code.
 */

#include <gtest/gtest.h>

#include "baselines/engines.h"
#include "workloads/timing.h"

namespace pimhe {
namespace {

using perf::OpKind;

class PlatformSuiteTest : public ::testing::Test
{
  protected:
    baselines::PlatformSuite suite;
};

TEST_F(PlatformSuiteTest, NamesMatchFigureLabels)
{
    const auto models = suite.all();
    ASSERT_EQ(models.size(), 4u);
    EXPECT_EQ(models[0]->name(), "CPU");
    EXPECT_EQ(models[1]->name(), "PIM");
    EXPECT_EQ(models[2]->name(), "CPU-SEAL");
    EXPECT_EQ(models[3]->name(), "GPU");
}

TEST_F(PlatformSuiteTest, AllTimesArePositiveAndFinite)
{
    for (const auto *m : suite.all()) {
        for (const auto op : {OpKind::VecAdd, OpKind::VecMul}) {
            for (const std::size_t limbs : {1ul, 2ul, 4ul}) {
                const double t =
                    m->elementwiseMs(op, limbs, 1 << 20, 256)
                        .totalMs();
                EXPECT_GT(t, 0) << m->name();
                EXPECT_TRUE(std::isfinite(t)) << m->name();
            }
        }
        const double c = m->convolutionMs(1024, 4, 10).totalMs();
        EXPECT_GT(c, 0) << m->name();
    }
}

TEST_F(PlatformSuiteTest, BreakdownTotalsCompose)
{
    const auto b =
        suite.gpu().elementwiseMs(OpKind::VecAdd, 4, 1 << 22);
    EXPECT_DOUBLE_EQ(b.totalMs(),
                     std::max(b.computeMs, b.memoryMs) +
                         b.transferMs + b.overheadMs);
}

// ----- Key Takeaway 1: PIM wins homomorphic addition everywhere ----

TEST_F(PlatformSuiteTest, PimWinsAdditionAtEveryWidthAndScale)
{
    for (const std::size_t limbs : {1ul, 2ul, 4ul}) {
        const std::size_t n = limbs == 1 ? 1024 : limbs == 2 ? 2048
                                                             : 4096;
        for (const std::size_t cts : {20480ul, 81920ul, 327680ul}) {
            const std::size_t elems = cts * 2 * n;
            const double pim = suite.pim()
                                   .elementwiseMs(OpKind::VecAdd,
                                                  limbs, elems, cts)
                                   .totalMs();
            for (const auto *other :
                 {static_cast<const perf::PlatformModel *>(
                      &suite.cpu()),
                  static_cast<const perf::PlatformModel *>(
                      &suite.seal()),
                  static_cast<const perf::PlatformModel *>(
                      &suite.gpu())}) {
                const double t = other
                                     ->elementwiseMs(OpKind::VecAdd,
                                                     limbs, elems,
                                                     cts)
                                     .totalMs();
                EXPECT_GT(t, pim)
                    << other->name() << " limbs=" << limbs
                    << " cts=" << cts;
            }
        }
    }
}

TEST_F(PlatformSuiteTest, AdditionSpeedupsInsidePaperBands)
{
    // Fig. 1(a) text: PIM outperforms CPU 20-150x, SEAL 35-80x; the
    // intro quotes 2-15x over GPU for addition.
    const std::size_t elems = 81920 * 2 * 4096;
    const std::size_t cts = 81920 * 2;
    const double pim =
        suite.pim()
            .elementwiseMs(OpKind::VecAdd, 4, elems, cts)
            .totalMs();
    const double cpu =
        suite.cpu()
            .elementwiseMs(OpKind::VecAdd, 4, elems, cts)
            .totalMs();
    const double seal =
        suite.seal()
            .elementwiseMs(OpKind::VecAdd, 4, elems, cts)
            .totalMs();
    const double gpu =
        suite.gpu()
            .elementwiseMs(OpKind::VecAdd, 4, elems, cts)
            .totalMs();
    EXPECT_GE(cpu / pim, 20.0);
    EXPECT_LE(cpu / pim, 150.0);
    EXPECT_GE(seal / pim, 35.0);
    EXPECT_LE(seal / pim, 80.0);
    EXPECT_GE(gpu / pim, 2.0);
    EXPECT_LE(gpu / pim, 15.0);
}

// ----- Key Takeaway 2: multiplication flips the ordering -----------

TEST_F(PlatformSuiteTest, GpuAndSealBeatPimOnWideMultiplication)
{
    const std::size_t elems = 81920 * 2 * 4096;
    const std::size_t cts = 81920 * 2;
    const double pim =
        suite.pim()
            .elementwiseMs(OpKind::VecMul, 4, elems, cts)
            .totalMs();
    const double cpu =
        suite.cpu()
            .elementwiseMs(OpKind::VecMul, 4, elems, cts)
            .totalMs();
    const double seal =
        suite.seal()
            .elementwiseMs(OpKind::VecMul, 4, elems, cts)
            .totalMs();
    const double gpu =
        suite.gpu()
            .elementwiseMs(OpKind::VecMul, 4, elems, cts)
            .totalMs();
    // CPU 40-50x slower than PIM (paper band).
    EXPECT_GE(cpu / pim, 40.0);
    EXPECT_LE(cpu / pim, 50.0);
    // SEAL 2-4x faster than PIM at 128 bits.
    EXPECT_GE(pim / seal, 2.0);
    EXPECT_LE(pim / seal, 4.0);
    // GPU 12-15x faster than PIM.
    EXPECT_GE(pim / gpu, 12.0);
    EXPECT_LE(pim / gpu, 15.0);
}

TEST_F(PlatformSuiteTest, SealAdvantageGrowsWithWidth)
{
    // Paper: PIM beats SEAL at 32-bit multiplication but loses at
    // 64/128 bits — the relative SEAL advantage must increase with
    // width.
    const auto ratio = [&](std::size_t limbs, std::size_t n) {
        const std::size_t cts = 20480 * 2;
        const std::size_t elems = cts * n;
        const double pim = suite.pim()
                               .elementwiseMs(OpKind::VecMul, limbs,
                                              elems, cts)
                               .totalMs();
        const double seal = suite.seal()
                                .elementwiseMs(OpKind::VecMul, limbs,
                                               elems, cts)
                                .totalMs();
        return seal / pim;
    };
    const double r32 = ratio(1, 1024);
    const double r64 = ratio(2, 2048);
    const double r128 = ratio(4, 4096);
    EXPECT_GT(r32, r64);
    EXPECT_GT(r64, r128);
    EXPECT_GE(r32, 0.9) << "PIM roughly matches or beats SEAL at 32b";
    EXPECT_LT(r128, 0.5) << "SEAL clearly wins at 128b";
}

TEST_F(PlatformSuiteTest, NativeMulAblationWouldBeatSeal)
{
    // Key Takeaway 2's forward-looking claim: with native 32-bit
    // multipliers, PIM multiplication would outperform the CPU
    // baselines.
    pim::SystemConfig gen2 = pim::paperSystem();
    gen2.dpu.nativeMul32 = true;
    PimCostModel future(gen2, 12);
    const std::size_t elems = 81920 * 2 * 4096;
    const double pim =
        future.elementwiseMs(OpKind::VecMul, 4, elems).totalMs();
    const double seal =
        suite.seal()
            .elementwiseMs(OpKind::VecMul, 4, elems, 81920 * 2)
            .totalMs();
    EXPECT_LT(pim, seal);
}

// ----- workload-level orderings (Figure 2) -------------------------

TEST_F(PlatformSuiteTest, MeanOrderingMatchesFigure2a)
{
    for (const std::size_t users : {640ul, 1280ul, 2560ul}) {
        workloads::WorkloadShape s;
        s.users = users;
        const double pim = workloads::meanTimeMs(suite.pim(), s);
        const double cpu = workloads::meanTimeMs(suite.cpu(), s);
        const double seal = workloads::meanTimeMs(suite.seal(), s);
        const double gpu = workloads::meanTimeMs(suite.gpu(), s);
        EXPECT_GT(cpu / pim, 1.0) << users;
        EXPECT_GT(seal / pim, 1.0) << users;
        EXPECT_GT(gpu / pim, 1.0) << users;
    }
}

TEST_F(PlatformSuiteTest, VarianceOrderingMatchesFigure2b)
{
    workloads::WorkloadShape s;
    s.users = 1280;
    const double pim = workloads::varianceTimeMs(suite.pim(), s);
    const double cpu = workloads::varianceTimeMs(suite.cpu(), s);
    const double seal = workloads::varianceTimeMs(suite.seal(), s);
    const double gpu = workloads::varianceTimeMs(suite.gpu(), s);
    // PIM beats only the custom CPU; SEAL and GPU beat PIM.
    EXPECT_GT(cpu / pim, 6.0);
    EXPECT_LT(cpu / pim, 25.0);
    EXPECT_GT(pim / seal, 2.0);
    EXPECT_LT(pim / seal, 10.0);
    EXPECT_GT(pim / gpu, 13.0);
    EXPECT_LT(pim / gpu, 50.0);
}

TEST_F(PlatformSuiteTest, LinregOrderingMatchesFigure2c)
{
    workloads::WorkloadShape s;
    s.users = 640;
    s.ctsPerUser = 64;
    const double pim = workloads::linregTimeMs(suite.pim(), s);
    const double cpu = workloads::linregTimeMs(suite.cpu(), s);
    const double seal = workloads::linregTimeMs(suite.seal(), s);
    const double gpu = workloads::linregTimeMs(suite.gpu(), s);
    EXPECT_GT(cpu, pim) << "PIM beats the custom CPU";
    EXPECT_GT(pim, seal) << "SEAL beats PIM (paper: 11.4x)";
    EXPECT_GT(pim, gpu) << "GPU beats PIM (paper: 54.9x)";
    EXPECT_NEAR(pim / seal, 11.4, 8.0);
    EXPECT_NEAR(pim / gpu, 54.9, 35.0);
}

TEST_F(PlatformSuiteTest, PimWorkloadTimeFlatAcrossUsers)
{
    // Fig. 2 observation 4: PIM execution time remains roughly
    // constant for different numbers of users.
    workloads::WorkloadShape a, b;
    a.users = 640;
    b.users = 2560;
    const double t_a = workloads::meanTimeMs(suite.pim(), a);
    const double t_b = workloads::meanTimeMs(suite.pim(), b);
    EXPECT_LT(t_b / t_a, 2.1);
    const double c_a = workloads::meanTimeMs(suite.cpu(), a);
    const double c_b = workloads::meanTimeMs(suite.cpu(), b);
    EXPECT_GT(c_b / c_a, 3.0) << "CPU should scale with users";
}

TEST(EngineFactory, MakesAllKinds)
{
    RingContext<2> ring(16, standardParams<2>().q);
    pim::SystemConfig cfg;
    cfg.numDpus = 1;
    const auto school = baselines::makeConvolver<2>(
        baselines::EngineKind::CpuSchoolbook, ring);
    const auto seal = baselines::makeConvolver<2>(
        baselines::EngineKind::CpuSealLike, ring);
    const auto pimconv = baselines::makeConvolver<2>(
        baselines::EngineKind::PimSystem, ring, cfg);
    EXPECT_EQ(school->name(), "schoolbook");
    EXPECT_EQ(seal->name(), "rns-ntt");
    EXPECT_EQ(pimconv->name(), "pim-schoolbook");

    Rng rng(1);
    const auto a = ring.sampleUniform(rng);
    const auto b = ring.sampleUniform(rng);
    const auto r1 = school->convolveCentered(a, b);
    const auto r2 = seal->convolveCentered(a, b);
    const auto r3 = pimconv->convolveCentered(a, b);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(r1, r3);
}

} // namespace
} // namespace pimhe

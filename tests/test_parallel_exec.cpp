/**
 * @file
 * Determinism stress tests for the host-parallel DPU execution engine.
 *
 * The engine's contract: host threads are a wall-clock optimisation
 * only. Results, modelled cycles/times, LaunchStats ordering and
 * checker conflict reports must be bit-identical at 1, 2, 8 or 16
 * host threads, and the fail-fast checker path must abort with the
 * same message (lowest-index dirty DPU) at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/thread_pool.h"
#include "pim/system.h"
#include "pimhe/kernels.h"
#include "test_util.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using pimhe::testing::kSeed;

// ----- ThreadPool unit tests -----

TEST(ThreadPool, CoversAllIndicesExactlyOnce)
{
    ThreadPool pool(16);
    EXPECT_EQ(pool.threadCount(), 16u);
    std::vector<int> hits(1000, 0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges)
{
    ThreadPool pool(8);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
    std::vector<int> hits(3, 0);
    pool.parallelFor(3, [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPool, PoolOfOneRunsInlineOnCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ids(16);
    pool.parallelFor(ids.size(), [&](std::size_t i) {
        ids[i] = std::this_thread::get_id();
    });
    for (const auto &id : ids)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ReusableAcrossManyBatches)
{
    ThreadPool pool(4);
    std::atomic<std::uint64_t> total{0};
    for (int batch = 0; batch < 64; ++batch)
        pool.parallelFor(17, [&](std::size_t i) {
            total.fetch_add(i, std::memory_order_relaxed);
        });
    EXPECT_EQ(total.load(), 64u * (16u * 17u / 2u));
}

// ----- PIMHE_HOST_THREADS resolution -----

TEST(HostThreads, ExplicitConfigWins)
{
    setenv("PIMHE_HOST_THREADS", "7", 1);
    EXPECT_EQ(resolveHostThreads(3), 3u);
    unsetenv("PIMHE_HOST_THREADS");
}

TEST(HostThreads, EnvOverridesAuto)
{
    setenv("PIMHE_HOST_THREADS", "5", 1);
    EXPECT_EQ(resolveHostThreads(0), 5u);
    unsetenv("PIMHE_HOST_THREADS");
}

TEST(HostThreads, BadEnvFallsBackToHardware)
{
    setenv("PIMHE_HOST_THREADS", "zero", 1);
    const std::size_t resolved = resolveHostThreads(0);
    unsetenv("PIMHE_HOST_THREADS");
    EXPECT_GE(resolved, 1u);
}

TEST(HostThreads, KnobFlowsIntoLaunchStats)
{
    SystemConfig cfg;
    cfg.numDpus = 2;
    cfg.hostThreads = 2;
    DpuSet set(cfg, 2);
    set.launch(1, [](TaskletCtx &ctx) { ctx.charge(1); });
    EXPECT_EQ(set.lastLaunch().hostThreads, 2u);

    setenv("PIMHE_HOST_THREADS", "3", 1);
    SystemConfig auto_cfg;
    auto_cfg.numDpus = 2;
    DpuSet auto_set(auto_cfg, 2);
    unsetenv("PIMHE_HOST_THREADS");
    auto_set.launch(1, [](TaskletCtx &ctx) { ctx.charge(1); });
    EXPECT_EQ(auto_set.lastLaunch().hostThreads, 3u);
}

// ----- engine determinism across thread counts -----

/** Everything a workload run produces that the contract covers. */
struct Snapshot
{
    std::vector<LaunchStats> launches;
    std::vector<std::uint8_t> results;
    double totalModeledMs = 0;
};

/**
 * A realistic mixed workload: 24 DPUs with per-DPU distinct operands,
 * one add launch and one mul launch of the shipped elementwise
 * kernels with the conflict checker recording, then a full readback.
 */
Snapshot
runWorkload(std::size_t host_threads)
{
    constexpr std::size_t kDpus = 24;
    constexpr std::uint32_t kElems = 96;
    constexpr std::uint32_t kLimbs = 2;

    SystemConfig cfg;
    cfg.numDpus = kDpus;
    cfg.hostThreads = host_threads;
    cfg.dpu.checker.enabled = true;

    pimhe_kernels::VecKernelParams kp;
    kp.elems = kElems;
    kp.limbs = kLimbs;
    kp.k = 54;
    kp.c = 77823;
    const U128 q = U128::oneShl(kp.k) - U128(kp.c);
    for (std::size_t l = 0; l < 4; ++l)
        kp.q[l] = q.limb(l);
    const std::size_t arr_bytes = kElems * kLimbs * 4;
    kp.mramA = 0;
    kp.mramB = arr_bytes;
    kp.mramOut = 2 * arr_bytes;

    DpuSet set(cfg, kDpus);
    Rng rng(kSeed);
    for (std::size_t d = 0; d < kDpus; ++d) {
        std::vector<std::uint8_t> buf(arr_bytes);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next32());
        set.copyToMram(d, kp.mramA, buf);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next32());
        set.copyToMram(d, kp.mramB, buf);
    }

    set.launch(12, pimhe_kernels::makeVecAddModQKernel(kp));
    set.launch(11, pimhe_kernels::makeVecMulModQKernel(kp));

    Snapshot snap;
    snap.results.resize(kDpus * arr_bytes);
    for (std::size_t d = 0; d < kDpus; ++d)
        set.copyFromMram(d, kp.mramOut,
                         std::span<std::uint8_t>(
                             snap.results.data() + d * arr_bytes,
                             arr_bytes));
    snap.launches = set.launches();
    snap.totalModeledMs = set.totalModeledMs();
    return snap;
}

/** Bitwise comparison of every modelled LaunchStats field. */
void
expectLaunchesIdentical(const Snapshot &ref, const Snapshot &got,
                        std::size_t threads)
{
    SCOPED_TRACE("host_threads=" + std::to_string(threads));
    ASSERT_EQ(ref.launches.size(), got.launches.size());
    for (std::size_t l = 0; l < ref.launches.size(); ++l) {
        const LaunchStats &a = ref.launches[l];
        const LaunchStats &b = got.launches[l];
        SCOPED_TRACE("launch " + std::to_string(l));
        EXPECT_EQ(a.maxCycles, b.maxCycles);
        EXPECT_EQ(a.kernelMs, b.kernelMs);
        EXPECT_EQ(a.hostToDpuMs, b.hostToDpuMs);
        EXPECT_EQ(a.dpuToHostMs, b.dpuToHostMs);
        EXPECT_EQ(a.launchOverheadMs, b.launchOverheadMs);
        ASSERT_EQ(a.dpus.size(), b.dpus.size());
        for (std::size_t d = 0; d < a.dpus.size(); ++d) {
            SCOPED_TRACE("dpu " + std::to_string(d));
            EXPECT_EQ(a.dpus[d].cycles, b.dpus[d].cycles);
            ASSERT_EQ(a.dpus[d].tasklets.size(),
                      b.dpus[d].tasklets.size());
            for (std::size_t t = 0; t < a.dpus[d].tasklets.size();
                 ++t) {
                const TaskletStats &ta = a.dpus[d].tasklets[t];
                const TaskletStats &tb = b.dpus[d].tasklets[t];
                EXPECT_EQ(ta.instructions, tb.instructions);
                EXPECT_EQ(ta.dmaTransfers, tb.dmaTransfers);
                EXPECT_EQ(ta.dmaBytes, tb.dmaBytes);
                EXPECT_EQ(ta.dmaStallCycles, tb.dmaStallCycles);
            }
            const ConflictReport &ca = a.dpus[d].conflicts;
            const ConflictReport &cb = b.dpus[d].conflicts;
            EXPECT_EQ(ca.totalConflicts, cb.totalConflicts);
            EXPECT_EQ(ca.accessesRecorded, cb.accessesRecorded);
            EXPECT_EQ(ca.suppressedConflicts, cb.suppressedConflicts);
            EXPECT_EQ(ca.diagnostics.size(), cb.diagnostics.size());
            EXPECT_EQ(ca.summary(), cb.summary());
        }
    }
    EXPECT_EQ(ref.results, got.results);
    EXPECT_EQ(ref.totalModeledMs, got.totalModeledMs);
}

TEST(ParallelExec, BitIdenticalAcrossThreadCounts)
{
    const Snapshot ref = runWorkload(1);
    EXPECT_GT(ref.totalModeledMs, 0.0);
    for (const std::size_t threads : {2u, 8u, 16u})
        expectLaunchesIdentical(ref, runWorkload(threads), threads);
}

TEST(ParallelExec, RepeatedRunsAreStable)
{
    const Snapshot first = runWorkload(8);
    expectLaunchesIdentical(first, runWorkload(8), 8);
}

TEST(ParallelExec, WallClockFieldsAreObservability)
{
    const Snapshot snap = runWorkload(8);
    for (const auto &l : snap.launches) {
        EXPECT_EQ(l.hostThreads, 8u);
        EXPECT_GE(l.hostWallMs, 0.0);
        // Never folded into modelled time.
        EXPECT_EQ(l.totalMs(), l.kernelMs + l.hostToDpuMs +
                                   l.dpuToHostMs + l.launchOverheadMs);
    }
}

// ----- fail-fast under parallel execution -----

/** Every tasklet stores to WRAM byte 0: a write/write race. */
Kernel
racyKernel()
{
    return [](TaskletCtx &ctx) { ctx.wramStore32(0, ctx.id()); };
}

TEST(ParallelExecDeathTest, FailFastReportsLowestDirtyDpu)
{
    // The panic must name DPU 0 — the lowest dirty index — no matter
    // which host thread finishes its DPU first.
    for (const std::size_t threads : {1u, 8u}) {
        EXPECT_DEATH(
            {
                SystemConfig cfg;
                cfg.numDpus = 8;
                cfg.hostThreads = threads;
                cfg.dpu.checker.enabled = true;
                cfg.dpu.checker.failFast = true;
                DpuSet set(cfg, 8);
                set.launch(4, racyKernel());
            },
            "conflict check failed on DPU 0");
    }
}

TEST(ParallelExec, NonFailFastReportsSurviveParallelLaunch)
{
    SystemConfig cfg;
    cfg.numDpus = 8;
    cfg.hostThreads = 8;
    cfg.dpu.checker.enabled = true;
    DpuSet set(cfg, 8);
    const auto &stats = set.launch(4, racyKernel());
    EXPECT_FALSE(stats.conflictClean());
    for (const auto &d : stats.dpus)
        EXPECT_GT(d.conflicts.totalConflicts, 0u);
}

// ----- pre-launch download accounting (regression) -----

TEST(DpuSetAccounting, PreLaunchDownloadsAreCharged)
{
    SystemConfig cfg;
    cfg.numDpus = 2;
    DpuSet set(cfg, 2);
    std::vector<std::uint8_t> buf(4096);
    EXPECT_EQ(set.preLaunchDownloadMs(), 0.0);
    set.copyFromMram(0, 0, buf);
    const double pre = set.preLaunchDownloadMs();
    EXPECT_GT(pre, 0.0);
    EXPECT_EQ(set.totalModeledMs(), pre);

    // After a launch, downloads charge that launch, not the bucket.
    set.launch(1, [](TaskletCtx &ctx) { ctx.charge(1); });
    set.copyFromMram(0, 0, buf);
    EXPECT_EQ(set.preLaunchDownloadMs(), pre);
    EXPECT_GT(set.lastLaunch().dpuToHostMs, 0.0);
    EXPECT_EQ(set.totalModeledMs(),
              pre + set.lastLaunch().totalMs());
}

} // namespace
} // namespace pimhe

/**
 * @file
 * Differential and failure-path tests of the async pipelined launch
 * engine.
 *
 * The engine's contract extends the parallel-execution one: an async
 * op stream must produce results AND per-launch modelled LaunchStats
 * bit-identical to the synchronous path at any host thread count —
 * the pipeline overlap may only ever show up in pipelineStats(),
 * whose two-track makespan is the max of the bus and DPU tracks
 * instead of their sum. The failure paths are load-bearing too:
 * deferred verifier rejections must surface at the merge point with
 * the synchronous diagnostics, and the fail-fast checker must name
 * the lowest-indexed dirty DPU regardless of completion order.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pim/pipeline.h"
#include "pim/system.h"
#include "pimhe/fast_kernels.h"
#include "pimhe/kernels.h"
#include "pimhe/orchestrator.h"
#include "test_util.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using namespace pimhe::pimhe_kernels;
using pimhe::testing::BfvHarness;

constexpr std::size_t kLimbs = 2;

SystemConfig
asyncConfig(std::size_t dpus, std::size_t host_threads)
{
    SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.hostThreads = host_threads;
    cfg.verifyBeforeLaunch = true;
    cfg.dpu.checker.enabled = true;
    cfg.dpu.checker.failFast = true;
    return cfg;
}

void
expectCiphertextsEqual(const std::vector<Ciphertext<kLimbs>> &a,
                       const std::vector<Ciphertext<kLimbs>> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), b[i].size()) << "ciphertext " << i;
        for (std::size_t c = 0; c < a[i].size(); ++c)
            EXPECT_TRUE(a[i][c] == b[i][c])
                << "ciphertext " << i << " component " << c;
    }
}

/** Bitwise comparison of every modelled LaunchStats field. The
 *  wall-clock observability fields (hostWallMs, hostThreads) are the
 *  only ones excluded — they are outside the contract. */
void
expectLaunchesIdentical(const std::vector<LaunchStats> &ref,
                        const std::vector<LaunchStats> &got)
{
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t l = 0; l < ref.size(); ++l) {
        const LaunchStats &a = ref[l];
        const LaunchStats &b = got[l];
        SCOPED_TRACE("launch " + std::to_string(l));
        EXPECT_EQ(a.maxCycles, b.maxCycles);
        EXPECT_EQ(a.kernelMs, b.kernelMs);
        EXPECT_EQ(a.hostToDpuMs, b.hostToDpuMs);
        EXPECT_EQ(a.dpuToHostMs, b.dpuToHostMs);
        EXPECT_EQ(a.launchOverheadMs, b.launchOverheadMs);
        EXPECT_EQ(a.execMode, b.execMode);
        ASSERT_EQ(a.dpus.size(), b.dpus.size());
        for (std::size_t d = 0; d < a.dpus.size(); ++d) {
            SCOPED_TRACE("dpu " + std::to_string(d));
            EXPECT_EQ(a.dpus[d].cycles, b.dpus[d].cycles);
            ASSERT_EQ(a.dpus[d].tasklets.size(),
                      b.dpus[d].tasklets.size());
            for (std::size_t t = 0; t < a.dpus[d].tasklets.size();
                 ++t) {
                const TaskletStats &ta = a.dpus[d].tasklets[t];
                const TaskletStats &tb = b.dpus[d].tasklets[t];
                EXPECT_EQ(ta.instructions, tb.instructions);
                EXPECT_EQ(ta.dmaTransfers, tb.dmaTransfers);
                EXPECT_EQ(ta.dmaBytes, tb.dmaBytes);
                EXPECT_EQ(ta.dmaStallCycles, tb.dmaStallCycles);
            }
            EXPECT_EQ(a.dpus[d].conflicts.totalConflicts,
                      b.dpus[d].conflicts.totalConflicts);
            EXPECT_EQ(a.dpus[d].conflicts.summary(),
                      b.dpus[d].conflicts.summary());
        }
    }
}

/** Everything a stream run produces that the contract covers. */
struct StreamSnapshot
{
    std::vector<std::vector<Ciphertext<kLimbs>>> results;
    std::vector<LaunchStats> launches;
    double totalModeledMs = 0;
    PipelineStats pipe;
};

/**
 * A 6-op elementwise stream (adds and coefficientwise muls
 * interleaved), run synchronously or through the async double-buffered
 * pipeline on `host_threads` host threads.
 */
StreamSnapshot
runStream(std::size_t host_threads, bool async)
{
    constexpr std::size_t kOps = 6;
    BfvHarness<kLimbs> h(32);
    PimHeSystem<kLimbs> sys(h.ctx, asyncConfig(3, host_threads), 3,
                            12);

    std::vector<std::vector<Ciphertext<kLimbs>>> lhs, rhs;
    for (std::size_t i = 0; i < kOps; ++i) {
        lhs.push_back({h.encryptScalar(3 + i)});
        rhs.push_back({h.encryptScalar(11 + 2 * i)});
    }

    StreamSnapshot snap;
    if (async) {
        std::vector<PimHeSystem<kLimbs>::AsyncOp> ops;
        for (std::size_t i = 0; i < kOps; ++i)
            ops.push_back(i % 2 ? sys.mulAsync(lhs[i], rhs[i])
                                : sys.addAsync(lhs[i], rhs[i]));
        for (auto &op : ops)
            snap.results.push_back(op.get());
        sys.finishAsync();
    } else {
        for (std::size_t i = 0; i < kOps; ++i)
            snap.results.push_back(
                i % 2 ? sys.mulCoefficientwise(lhs[i], rhs[i])
                      : sys.addCiphertextVectors(lhs[i], rhs[i]));
    }
    snap.launches = sys.dpuSet().launches();
    snap.totalModeledMs = sys.dpuSet().totalModeledMs();
    snap.pipe = sys.dpuSet().pipelineStats();
    return snap;
}

// ----- differential: async vs sync, across host thread counts -----

TEST(AsyncDifferential, MatchesSyncBitExactAcrossThreadCounts)
{
    const StreamSnapshot ref = runStream(1, /*async=*/false);
    ASSERT_EQ(ref.launches.size(), 6u);
    for (const std::size_t threads : {1u, 8u, 16u}) {
        SCOPED_TRACE("host_threads=" + std::to_string(threads));
        const StreamSnapshot got = runStream(threads, /*async=*/true);
        expectCiphertextsEqual(ref.results[0], got.results[0]);
        for (std::size_t i = 0; i < ref.results.size(); ++i)
            expectCiphertextsEqual(ref.results[i], got.results[i]);
        expectLaunchesIdentical(ref.launches, got.launches);
        EXPECT_EQ(ref.totalModeledMs, got.totalModeledMs);
    }
}

TEST(AsyncDifferential, AutoThreadResolutionKeepsTheContract)
{
    // hostThreads = 0 resolves via PIMHE_HOST_THREADS / hardware —
    // exactly what the TSan CI leg exercises at 16 threads.
    const StreamSnapshot ref = runStream(1, /*async=*/false);
    const StreamSnapshot got = runStream(0, /*async=*/true);
    for (std::size_t i = 0; i < ref.results.size(); ++i)
        expectCiphertextsEqual(ref.results[i], got.results[i]);
    expectLaunchesIdentical(ref.launches, got.launches);
}

TEST(AsyncDifferential, PipelineStatsDeterministicAcrossThreadCounts)
{
    const StreamSnapshot ref = runStream(1, /*async=*/true);
    for (const std::size_t threads : {8u, 16u}) {
        SCOPED_TRACE("host_threads=" + std::to_string(threads));
        const StreamSnapshot got = runStream(threads, /*async=*/true);
        EXPECT_EQ(ref.pipe.clock.busCursorMs, got.pipe.clock.busCursorMs);
        EXPECT_EQ(ref.pipe.clock.dpuCursorMs, got.pipe.clock.dpuCursorMs);
        EXPECT_EQ(ref.pipe.clock.busBusyMs, got.pipe.clock.busBusyMs);
        EXPECT_EQ(ref.pipe.clock.dpuBusyMs, got.pipe.clock.dpuBusyMs);
        EXPECT_EQ(ref.pipe.clock.serialMs, got.pipe.clock.serialMs);
        EXPECT_EQ(ref.pipe.asyncLaunches, got.pipe.asyncLaunches);
        ASSERT_EQ(ref.pipe.spans.size(), got.pipe.spans.size());
        for (std::size_t s = 0; s < ref.pipe.spans.size(); ++s) {
            const PipelineSpan &a = ref.pipe.spans[s];
            const PipelineSpan &b = got.pipe.spans[s];
            SCOPED_TRACE("span " + std::to_string(s));
            EXPECT_EQ(a.launchIndex, b.launchIndex);
            EXPECT_EQ(a.uploadBeginMs, b.uploadBeginMs);
            EXPECT_EQ(a.uploadEndMs, b.uploadEndMs);
            EXPECT_EQ(a.kernelBeginMs, b.kernelBeginMs);
            EXPECT_EQ(a.kernelEndMs, b.kernelEndMs);
            EXPECT_EQ(a.downloadBeginMs, b.downloadBeginMs);
            EXPECT_EQ(a.downloadEndMs, b.downloadEndMs);
        }
    }
}

// ----- pipelined reduction -----

TEST(PipelinedReduce, BitExactWithSynchronousTreeReduce)
{
    BfvHarness<kLimbs> h(32);
    PimHeSystem<kLimbs> sys(h.ctx, asyncConfig(3, 4), 3, 12);

    std::vector<Ciphertext<kLimbs>> cts;
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < 7; ++i) {
        cts.push_back(h.encryptScalar(5 + 3 * i));
        expected += 5 + 3 * i;
    }

    const auto tree = sys.reduceCiphertexts(cts);
    const auto piped = sys.reduceCiphertextsPipelined(cts);
    expectCiphertextsEqual({tree}, {piped});
    EXPECT_EQ(h.decryptScalar(piped), expected % h.params.t);
    // The stream must actually have gone through the async engine.
    EXPECT_GT(sys.dpuSet().pipelineStats().asyncLaunches, 0u);
}

TEST(PipelinedReduce, SingleElementShortCircuits)
{
    BfvHarness<kLimbs> h(32);
    PimHeSystem<kLimbs> sys(h.ctx, asyncConfig(2, 2), 2, 8);
    const auto ct = h.encryptScalar(42);
    const auto out = sys.reduceCiphertextsPipelined({ct});
    expectCiphertextsEqual({ct}, {out});
    EXPECT_TRUE(sys.dpuSet().launches().empty());
}

// ----- two-track clock semantics -----

TEST(TwoTrackClock, UnitScheduleArithmetic)
{
    TwoTrackClock clk;
    // Submit-time uploads serialise on the bus...
    PipelineSpan s0 = clk.chargeUpload(2.0, /*synchronous=*/false, 0);
    PipelineSpan s1 = clk.chargeUpload(3.0, /*synchronous=*/false, 1);
    EXPECT_DOUBLE_EQ(s0.uploadBeginMs, 0.0);
    EXPECT_DOUBLE_EQ(s0.uploadEndMs, 2.0);
    EXPECT_DOUBLE_EQ(s1.uploadBeginMs, 2.0);
    EXPECT_DOUBLE_EQ(s1.uploadEndMs, 5.0);
    // ...while kernels serialise on the DPU track, each gated on its
    // own upload.
    clk.chargeKernel(s0, 4.0);
    clk.chargeKernel(s1, 4.0);
    EXPECT_DOUBLE_EQ(s0.kernelBeginMs, 2.0);
    EXPECT_DOUBLE_EQ(s0.kernelEndMs, 6.0);
    EXPECT_DOUBLE_EQ(s1.kernelBeginMs, 6.0); // DPU busy until 6
    EXPECT_DOUBLE_EQ(s1.kernelEndMs, 10.0);
    // Launch 1's upload overlapped launch 0's kernel.
    EXPECT_TRUE(s1.busOverlaps(s0.kernelBeginMs, s0.kernelEndMs));
    // Download of launch 0 cannot begin before its kernel ends.
    EXPECT_DOUBLE_EQ(clk.chargeDownload(1.0, s0.kernelEndMs), 6.0);
    // Makespan is the max of the tracks; serial is the sum of phases.
    EXPECT_DOUBLE_EQ(clk.makespanMs(), 10.0);
    EXPECT_DOUBLE_EQ(clk.serialMs, 14.0);
    EXPECT_DOUBLE_EQ(clk.overlapSavedMs(), 4.0);
    // A synchronous launch is a full barrier: both tracks join.
    PipelineSpan s2 = clk.chargeUpload(1.0, /*synchronous=*/true, 2);
    EXPECT_DOUBLE_EQ(s2.uploadBeginMs, 10.0);
    EXPECT_DOUBLE_EQ(clk.busCursorMs, 11.0);
    EXPECT_DOUBLE_EQ(clk.dpuCursorMs, 10.0);
}

TEST(TwoTrackClock, SyncOnlyHistoryHasZeroOverlapExactly)
{
    // Synchronous launches barrier both tracks, so a sync-only
    // history's makespan equals its serial time EXACTLY — the same
    // doubles added in the same order, not merely approximately.
    BfvHarness<kLimbs> h(32);
    PimHeSystem<kLimbs> sys(h.ctx, asyncConfig(3, 4), 3, 12);
    const std::vector<Ciphertext<kLimbs>> a{h.encryptScalar(6)};
    const std::vector<Ciphertext<kLimbs>> b{h.encryptScalar(9)};
    (void)sys.addCiphertextVectors(a, b);
    (void)sys.mulCoefficientwise(a, b);
    (void)sys.reduceCiphertexts({a.front(), b.front(), a.front()});

    const PipelineStats &ps = sys.dpuSet().pipelineStats();
    ASSERT_FALSE(ps.spans.empty());
    EXPECT_EQ(ps.asyncLaunches, 0u);
    EXPECT_GT(ps.serialMs(), 0.0);
    EXPECT_DOUBLE_EQ(ps.makespanMs(), ps.serialMs());
    EXPECT_DOUBLE_EQ(ps.overlapSavedMs(), 0.0);
    EXPECT_EQ(ps.overlappingPairs(), 0u);
}

TEST(TwoTrackClock, AsyncStreamHidesTransferTime)
{
    const StreamSnapshot got = runStream(4, /*async=*/true);
    EXPECT_EQ(got.pipe.asyncLaunches, 6u);
    EXPECT_EQ(got.pipe.spans.size(), got.launches.size());
    EXPECT_LT(got.pipe.makespanMs(), got.pipe.serialMs());
    EXPECT_GT(got.pipe.speedup(), 1.0);
    EXPECT_GT(got.pipe.overlappingPairs(), 0u);
    // The serial track of the pipeline clock is the synchronous
    // engine's accounting: identical to the per-launch sum.
    double serial = 0;
    for (const auto &l : got.launches)
        serial += l.totalMs();
    EXPECT_NEAR(got.pipe.serialMs(), serial, 1e-9);
}

// ----- failure paths -----

CompiledKernel
interpretOnly(const char *name, Kernel body)
{
    CompiledKernel ck;
    ck.name = name;
    ck.interpret = std::move(body);
    ck.waiver = "test-only interpreter kernel";
    return ck;
}

TEST(AsyncPipelineDeathTest, DeferredVerifierRejectionSurfacesAtWait)
{
    // The static stack runs at submission, but the rejection is
    // captured in the ticket and panics at the merge point with the
    // synchronous diagnostic.
    EXPECT_DEATH(
        {
            SystemConfig cfg;
            cfg.verifyBeforeLaunch = true;
            DpuSet set(cfg, 1);
            VecKernelParams kp;
            kp.elems = 64;
            kp.limbs = 1;
            kp.k = 31;
            kp.c = 1;
            kp.q[0] = 0x7fffffffu;
            kp.mramA = 0;
            kp.mramB = 64 * 4;
            kp.mramOut = kp.mramA; // in-place clobber, caught statically
            LaunchTicket t = set.launchAsync(
                4, compiledVecAddModQ(kp),
                vecKernelFootprint(kp, cfg.dpu, 4, false));
            t.wait();
        },
        "pre-launch verification rejected");
}

/** Every tasklet stores to WRAM byte 0: a write/write race. */
Kernel
racyKernel()
{
    return [](TaskletCtx &ctx) { ctx.wramStore32(0, ctx.id()); };
}

TEST(AsyncPipelineDeathTest, FailFastNamesLowestDirtyDpuAtDrain)
{
    // Async launches defer the fail-fast panic into the merge, which
    // walks DPUs in index order — so the panic names DPU 0 no matter
    // which host thread or pipeline slot finished first.
    for (const std::size_t threads : {1u, 8u}) {
        EXPECT_DEATH(
            {
                SystemConfig cfg;
                cfg.numDpus = 8;
                cfg.hostThreads = threads;
                cfg.dpu.checker.enabled = true;
                cfg.dpu.checker.failFast = true;
                DpuSet set(cfg, 8);
                (void)set.launchAsync(4,
                                      interpretOnly("racy",
                                                    racyKernel()));
                set.drainAsync();
            },
            "conflict check failed on DPU 0");
    }
}

TEST(AsyncPipelineDeathTest, StatsAccessorsRefuseMidPipeline)
{
    EXPECT_DEATH(
        {
            SystemConfig cfg;
            cfg.numDpus = 2;
            DpuSet set(cfg, 2);
            (void)set.launchAsync(
                1, interpretOnly("noop", [](TaskletCtx &ctx) {
                    ctx.charge(1);
                }));
            (void)set.pipelineStats();
        },
        "in flight");
}

TEST(AsyncPipelineDeathTest, ConsumingAnAsyncOpTwicePanics)
{
    EXPECT_DEATH(
        {
            BfvHarness<kLimbs> h(32);
            PimHeSystem<kLimbs> sys(h.ctx, asyncConfig(2, 2), 2, 8);
            const std::vector<Ciphertext<kLimbs>> a{
                h.encryptScalar(1)};
            const std::vector<Ciphertext<kLimbs>> b{
                h.encryptScalar(2)};
            auto op = sys.addAsync(a, b);
            (void)op.get();
            (void)op.get();
        },
        "already-consumed");
}

TEST(AsyncTickets, DoubleWaitIsIdempotent)
{
    SystemConfig cfg;
    cfg.numDpus = 2;
    DpuSet set(cfg, 2);
    LaunchTicket t = set.launchAsync(
        2, interpretOnly("noop", [](TaskletCtx &ctx) {
            ctx.charge(7);
        }));
    ASSERT_TRUE(t.valid());
    const LaunchStats &first = t.wait();
    const LaunchStats &second = t.wait();
    EXPECT_EQ(&first, &second); // the merged record, not a re-merge
    EXPECT_EQ(set.launches().size(), 1u);
    EXPECT_GT(first.maxCycles, 0.0);
}

TEST(AsyncTickets, DroppedTicketStillCompletesAtDrain)
{
    SystemConfig cfg;
    cfg.numDpus = 2;
    DpuSet set(cfg, 2);
    for (int i = 0; i < 3; ++i)
        (void)set.launchAsync(
            1, interpretOnly("store", [](TaskletCtx &ctx) {
                ctx.wramStore32(0, 0xBEEFu);
                ctx.wramStore32(4, 0u);
                ctx.mramWrite(0, 0, 8);
            }));
    EXPECT_TRUE(set.asyncInFlight());
    set.drainAsync();
    EXPECT_FALSE(set.asyncInFlight());
    // All three launches merged, in submission order, with their
    // modelled accounting and pipeline spans recorded.
    EXPECT_EQ(set.launches().size(), 3u);
    EXPECT_EQ(set.pipelineStats().spans.size(), 3u);
    EXPECT_EQ(set.pipelineStats().asyncLaunches, 3u);
    std::vector<std::uint8_t> out(4);
    set.copyFromMram(0, 0, out);
    EXPECT_EQ(out[0], 0xEFu);
    EXPECT_EQ(out[1], 0xBEu);
}

TEST(AsyncTickets, DroppedAsyncOpDiscardsResultsNotCorrectness)
{
    BfvHarness<kLimbs> h(32);
    PimHeSystem<kLimbs> sys(h.ctx, asyncConfig(2, 2), 2, 8);
    const std::vector<Ciphertext<kLimbs>> a{h.encryptScalar(20)};
    const std::vector<Ciphertext<kLimbs>> b{h.encryptScalar(3)};
    (void)sys.addAsync(a, b); // dropped without get()
    sys.finishAsync();
    // The engine is clean afterwards: a later op is unaffected.
    const auto sum = sys.addCiphertextVectors(a, b);
    EXPECT_EQ(h.decryptScalar(sum.front()), 23u % h.params.t);
}

// ----- chunked MRAM backing store -----

TEST(MramChunks, CrossChunkWriteReadRoundTrip)
{
    Mram m(2 * Mram::kChunkBytes + 4096);
    const std::uint64_t addr = Mram::kChunkBytes - 100;
    std::vector<std::uint8_t> in(300), out(300);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i * 7 + 1);
    m.write(addr, in.data(), in.size());
    m.read(addr, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(MramChunks, UntouchedChunksReadAsZeros)
{
    Mram m(2 * Mram::kChunkBytes);
    std::vector<std::uint8_t> out(64, 0xFF);
    m.read(Mram::kChunkBytes + 8, out.data(), out.size());
    for (const std::uint8_t b : out)
        EXPECT_EQ(b, 0u);
}

TEST(MramChunks, CopyConstructorDeepCopies)
{
    Mram m(Mram::kChunkBytes + 4096);
    const std::uint32_t v = 0x12345678u;
    m.write(16, reinterpret_cast<const std::uint8_t *>(&v), 4);
    Mram copy(m);
    const std::uint32_t w = 0xDEADBEEFu;
    m.write(16, reinterpret_cast<const std::uint8_t *>(&w), 4);
    std::uint32_t got = 0;
    copy.read(16, reinterpret_cast<std::uint8_t *>(&got), 4);
    EXPECT_EQ(got, v);
    // Chunks the original touched after the copy stay independent.
    m.write(Mram::kChunkBytes + 8,
            reinterpret_cast<const std::uint8_t *>(&w), 4);
    got = 1;
    copy.read(Mram::kChunkBytes + 8,
              reinterpret_cast<std::uint8_t *>(&got), 4);
    EXPECT_EQ(got, 0u);
}

} // namespace
} // namespace pimhe

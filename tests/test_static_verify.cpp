/**
 * @file
 * Static pre-launch verifier tests, in both directions:
 *
 *  - every shipped kernel footprint x seed parameter set verifies
 *    clean (the grid tools/pim_verify sweeps must be green here too),
 *  - seeded violations of each resource budget (WRAM, DMA alignment,
 *    MRAM overlap, tasklet count, MRAM staging, arithmetic parameter
 *    range) are rejected with the exact resource / operation named,
 *  - the DpuSet verified-launch overload gates launches when
 *    SystemConfig::verifyBeforeLaunch is on and retains the report.
 */

#include <gtest/gtest.h>

#include "analysis/interval.h"
#include "analysis/verifier.h"
#include "bfv/params.h"
#include "ntt/ntt.h"
#include "pim/system.h"
#include "pimhe/kernels.h"
#include "pimhe/ntt_kernel.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using namespace pimhe::pimhe_kernels;
using analysis::Resource;

template <std::size_t L>
VecKernelParams
makeVecParams(std::size_t elems)
{
    const auto q = standardParams<L>().q;
    VecKernelParams p;
    p.elems = static_cast<std::uint32_t>(elems);
    p.limbs = L;
    p.k = static_cast<std::uint32_t>(q.bitLength());
    p.c = static_cast<std::uint32_t>(
        (WideInt<L>::oneShl(p.k) - q).toUint64());
    for (std::size_t i = 0; i < L; ++i)
        p.q[i] = q.limb(i);
    const std::size_t arr = ((elems * L * 4 + 7) / 8) * 8;
    p.mramA = 0;
    p.mramB = arr;
    p.mramOut = 2 * arr;
    return p;
}

template <std::size_t L>
ConvKernelParams
makeConvParams(std::uint32_t n)
{
    const auto q = standardParams<L>().q;
    ConvKernelParams p;
    p.n = n;
    p.limbs = L;
    const WideInt<L> half = q.shr(1);
    for (std::size_t l = 0; l < L; ++l) {
        p.q[l] = q.limb(l);
        p.halfQ[l] = half.limb(l);
    }
    const std::size_t elem_bytes = L * 4;
    p.mramA = 0;
    p.mramB = n * elem_bytes;
    p.mramOut = 2 * n * elem_bytes;
    return p;
}

// ---------------------------------------------------------------------
// Clean direction: everything the library actually launches verifies.
// ---------------------------------------------------------------------

template <std::size_t L>
void
expectVecGridClean()
{
    const DpuConfig cfg;
    const analysis::LaunchVerifier verifier(cfg);
    const auto params = standardParams<L>();
    for (unsigned tasklets : {1u, 8u, 11u, 12u, 16u, 24u})
        for (bool mul : {false, true}) {
            const auto kp = makeVecParams<L>(params.n);
            const auto fp = vecKernelFootprint(kp, cfg, tasklets, mul);
            const auto report = verifier.verify(fp, tasklets);
            EXPECT_TRUE(report.ok())
                << "limbs=" << L << " tasklets=" << tasklets
                << (mul ? " mul" : " add") << "\n"
                << report.summary();
            EXPECT_FALSE(report.notes.empty())
                << "satisfied budgets should leave an audit trail";
        }
}

TEST(StaticVerify, ShippedVecFootprintsVerifyClean)
{
    expectVecGridClean<1>();
    expectVecGridClean<2>();
    expectVecGridClean<4>();
}

TEST(StaticVerify, ShippedConvFootprintsVerifyClean)
{
    const DpuConfig cfg;
    const analysis::LaunchVerifier verifier(cfg);

    const auto check = [&](auto limbs_tag, std::uint32_t n) {
        constexpr std::size_t L = decltype(limbs_tag)::value;
        const auto fp = convKernelFootprint(makeConvParams<L>(n), cfg);
        ASSERT_GE(fp.maxTasklets, 12u)
            << "limbs=" << L << " n=" << n;
        const auto report = verifier.verify(fp, 12);
        EXPECT_TRUE(report.ok())
            << "limbs=" << L << " n=" << n << "\n" << report.summary();
    };
    // The degrees the convolution suites drive through PimConvolver.
    check(std::integral_constant<std::size_t, 1>{}, 1024);
    check(std::integral_constant<std::size_t, 2>{}, 1024);
    check(std::integral_constant<std::size_t, 4>{}, 1024);
    check(std::integral_constant<std::size_t, 4>{}, 256);
}

TEST(StaticVerify, ShippedNttFootprintsVerifyClean)
{
    const DpuConfig cfg;
    const analysis::LaunchVerifier verifier(cfg);
    for (std::uint32_t n : {64u, 256u, 1024u, 2048u}) {
        const auto primes = findNttPrimes(30, 2 * n, 1);
        ASSERT_FALSE(primes.empty()) << "n=" << n;
        const auto p = static_cast<std::uint32_t>(primes[0]);
        const auto fp =
            nttKernelFootprint(makeNttParams(p, n, 2), cfg);
        ASSERT_GE(fp.maxTasklets, 1u) << "n=" << n;
        for (unsigned tasklets : {1u, fp.maxTasklets}) {
            const auto report = verifier.verify(fp, tasklets);
            EXPECT_TRUE(report.ok())
                << "n=" << n << " tasklets=" << tasklets << "\n"
                << report.summary();
        }
    }
}

TEST(StaticVerify, IntervalAcceptsShippedParams)
{
    const auto r1 = analysis::analyzeParamsSet(
        analysis::specOfParams<1>(standardParams<1>(), "N=1"));
    const auto r2 = analysis::analyzeParamsSet(
        analysis::specOfParams<2>(standardParams<2>(), "N=2"));
    const auto r4 = analysis::analyzeParamsSet(
        analysis::specOfParams<4>(standardParams<4>(), "N=4"));
    EXPECT_TRUE(r1.ok()) << r1.summary();
    EXPECT_TRUE(r2.ok()) << r2.summary();
    EXPECT_TRUE(r4.ok()) << r4.summary();
    // The proof is non-trivial: every trace discharges obligations.
    EXPECT_GT(r4.trace.steps().size(), 5u);
}

TEST(StaticVerify, IntervalAcceptsShippedNttAndMontgomeryPrimes)
{
    for (std::uint32_t n : {64u, 1024u, 2048u}) {
        const auto p = static_cast<std::uint32_t>(
            findNttPrimes(30, 2 * n, 1)[0]);
        const auto ntt = analysis::analyzeNttPrime(p, n);
        EXPECT_TRUE(ntt.ok()) << ntt.summary();
        const auto mont = analysis::analyzeMontgomeryPrime(p);
        EXPECT_TRUE(mont.ok()) << mont.summary();
    }
}

// ---------------------------------------------------------------------
// Seeded violations: each budget, rejected with the resource named.
// ---------------------------------------------------------------------

TEST(StaticVerify, RejectsWramOverBudget)
{
    const DpuConfig cfg;
    const analysis::LaunchVerifier verifier(cfg);
    // A kernel honestly declaring a deep stack blows the 64 KB WRAM
    // budget at full occupancy: 12 * (buffers + 8 KB stack) >> 64 KB.
    auto fp = vecKernelFootprint(makeVecParams<1>(4096), cfg, 12,
                                 /*multiply=*/false);
    fp.stackBytesPerTasklet = 8192;
    const auto report = verifier.verify(fp, 12);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.names(Resource::Wram)) << report.summary();
    bool found = false;
    for (const auto &v : report.violations)
        if (v.resource == Resource::Wram) {
            found = true;
            EXPECT_EQ(v.budget, cfg.wramBytes);
            EXPECT_EQ(v.usage, fp.wramTotal(12));
            EXPECT_NE(v.what.find("WRAM"), std::string::npos)
                << v.what;
        }
    EXPECT_TRUE(found);
}

TEST(StaticVerify, RejectsUnalignedDma)
{
    const DpuConfig cfg;
    const analysis::LaunchVerifier verifier(cfg);
    // Operand B staged at a 4-byte-aligned MRAM offset: the footprint
    // builder derives the degraded guarantee and the verifier flags it.
    auto kp = makeVecParams<1>(512);
    kp.mramB += 4;
    const auto report = verifier.verify(
        vecKernelFootprint(kp, cfg, 8, /*multiply=*/true), 8);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.names(Resource::Dma)) << report.summary();
    EXPECT_NE(report.summary().find("chunk staging"),
              std::string::npos)
        << report.summary();
}

TEST(StaticVerify, RejectsMramRegionOverlap)
{
    const DpuConfig cfg;
    const analysis::LaunchVerifier verifier(cfg);
    // Result written over operand A (an in-place launch the kernels
    // do not support): overlap with a writer is a clobber.
    auto kp = makeVecParams<2>(1024);
    kp.mramOut = kp.mramA;
    const auto report = verifier.verify(
        vecKernelFootprint(kp, cfg, 12, /*multiply=*/false), 12);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.names(Resource::Mram)) << report.summary();
    const auto text = report.summary();
    EXPECT_NE(text.find("operand A"), std::string::npos) << text;
    EXPECT_NE(text.find("result"), std::string::npos) << text;
}

TEST(StaticVerify, RejectsTaskletOverCount)
{
    const DpuConfig cfg;
    const analysis::LaunchVerifier verifier(cfg);

    // Beyond the 24-tasklet hardware cap.
    const auto hw = verifier.verify(
        vecKernelFootprint(makeVecParams<1>(256), cfg, 25, false), 25);
    EXPECT_FALSE(hw.ok());
    EXPECT_TRUE(hw.names(Resource::Tasklets)) << hw.summary();
    EXPECT_NE(hw.summary().find("hardware limit"), std::string::npos)
        << hw.summary();

    // Within the hardware cap but beyond what the kernel's WRAM
    // layout supports: NTT at n=4096 cannot host even one tasklet
    // once the shared tables and the stack reserve are accounted.
    const auto p = static_cast<std::uint32_t>(
        findNttPrimes(30, 2 * 4096, 1)[0]);
    const auto fp = nttKernelFootprint(makeNttParams(p, 4096, 1), cfg);
    EXPECT_EQ(fp.maxTasklets, 0u);
    const auto layout = verifier.verify(fp, 1);
    EXPECT_FALSE(layout.ok());
    EXPECT_TRUE(layout.names(Resource::Tasklets)) << layout.summary();
    EXPECT_NE(layout.summary().find("WRAM layout limit"),
              std::string::npos)
        << layout.summary();
}

TEST(StaticVerify, RejectsMramStagingOverflow)
{
    const DpuConfig cfg;
    const analysis::LaunchVerifier verifier(cfg);
    // Three 96 MB operand arrays against 64 MB of MRAM.
    const auto report = verifier.verify(
        vecKernelFootprint(makeVecParams<4>(6'000'000), cfg, 12, true),
        12);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.names(Resource::Staging)) << report.summary();
    bool found = false;
    for (const auto &v : report.violations)
        if (v.resource == Resource::Staging) {
            found = true;
            EXPECT_EQ(v.budget, cfg.mramBytes);
            EXPECT_GT(v.usage, cfg.mramBytes);
        }
    EXPECT_TRUE(found);
}

TEST(StaticVerify, RejectsOverflowingParameterSets)
{
    using analysis::AbsVal;
    analysis::ParamsSpec spec;
    spec.limbs = 2;
    spec.n = 2048;

    // c = 3 * 2^31 needs 33 bits: the single-limb fold constant of
    // wide_ops.h cannot represent it.
    spec.name = "c-too-wide";
    spec.q = AbsVal::oneShl(54) - AbsVal(3ULL << 31);
    auto report = analysis::analyzeParamsSet(spec);
    ASSERT_FALSE(report.ok()) << report.summary();
    EXPECT_EQ(report.trace.firstViolation().op,
              "pseudo-mersenne constant")
        << report.summary();

    // c = 2^30 > 2^(k/2): the three-fold chain is not guaranteed to
    // converge below 2^k, so the fold-width proof must refuse it.
    spec.name = "fold-divergent";
    spec.q = AbsVal::oneShl(54) - AbsVal::oneShl(30);
    report = analysis::analyzeParamsSet(spec);
    ASSERT_FALSE(report.ok()) << report.summary();
    EXPECT_EQ(report.trace.firstViolation().op,
              "fold convergence precondition")
        << report.summary();

    // Limb counts outside {1, 2, 4} have no kernel instantiation.
    spec.name = "bad-limbs";
    spec.limbs = 3;
    spec.q = AbsVal::oneShl(54) - AbsVal(77823);
    report = analysis::analyzeParamsSet(spec);
    ASSERT_FALSE(report.ok()) << report.summary();
    EXPECT_EQ(report.trace.firstViolation().op, "limb count")
        << report.summary();

    // Non-power-of-two ring degree breaks the negacyclic fold.
    spec.name = "bad-degree";
    spec.limbs = 2;
    spec.n = 1000;
    report = analysis::analyzeParamsSet(spec);
    ASSERT_FALSE(report.ok()) << report.summary();
    EXPECT_EQ(report.trace.firstViolation().op, "ring degree")
        << report.summary();
}

TEST(StaticVerify, RejectsBadNttAndMontgomeryPrimes)
{
    // p = 12289 is NTT-friendly for n=2048 but too small for the
    // fixed 2^60 Barrett scaling: mu overflows its 32-bit register.
    const auto small = analysis::analyzeNttPrime(12289, 2048);
    ASSERT_FALSE(small.ok()) << small.summary();
    EXPECT_EQ(small.trace.firstViolation().op, "barrett mu width")
        << small.summary();

    // 97 splits no 128th root of unity: 2n does not divide p - 1.
    const auto unfriendly = analysis::analyzeNttPrime(97, 64);
    ASSERT_FALSE(unfriendly.ok()) << unfriendly.summary();
    EXPECT_EQ(unfriendly.trace.firstViolation().op, "ntt-friendly")
        << unfriendly.summary();

    // Montgomery: even moduli have no inverse mod 2^64, and >= 2^62
    // breaks the u < 2p bound.
    const auto even = analysis::analyzeMontgomeryPrime(1ULL << 32);
    ASSERT_FALSE(even.ok());
    EXPECT_EQ(even.trace.firstViolation().op, "modulus odd");
    const auto wide =
        analysis::analyzeMontgomeryPrime((1ULL << 62) + 1);
    ASSERT_FALSE(wide.ok());
    EXPECT_EQ(wide.trace.firstViolation().op, "modulus width");
}

// ---------------------------------------------------------------------
// DpuSet wiring: verifyBeforeLaunch gates launches and keeps reports.
// ---------------------------------------------------------------------

TEST(StaticVerify, VerifiedLaunchAcceptsCleanPlanAndKeepsReport)
{
    SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    DpuSet set(cfg, 1);
    const auto kp = makeVecParams<1>(64);
    set.launch(4, makeVecAddModQKernel(kp),
               vecKernelFootprint(kp, cfg.dpu, 4, false));
    const auto &report = set.lastVerify();
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.kernel, "vec-add-modq");
    EXPECT_EQ(report.tasklets, 4u);
    EXPECT_FALSE(report.notes.empty());
}

TEST(StaticVerifyDeath, VerifiedLaunchPanicsOnBadPlan)
{
    SystemConfig cfg;
    cfg.verifyBeforeLaunch = true;
    DpuSet set(cfg, 1);
    auto kp = makeVecParams<1>(64);
    kp.mramOut = kp.mramA; // in-place clobber, caught statically
    EXPECT_DEATH(set.launch(4, makeVecAddModQKernel(kp),
                            vecKernelFootprint(kp, cfg.dpu, 4, false)),
                 "pre-launch verification rejected");
}

TEST(StaticVerifyDeath, VerifyDisabledSkipsGateAndKeepsNoReport)
{
    SystemConfig cfg; // verifyBeforeLaunch defaults to off
    DpuSet set(cfg, 1);
    auto kp = makeVecParams<1>(64);
    kp.mramOut = kp.mramA;
    // The (bad) footprint is ignored: the kernel itself tolerates the
    // aliasing here, so the launch completes...
    set.launch(1, makeVecAddModQKernel(kp),
               vecKernelFootprint(kp, cfg.dpu, 1, false));
    // ...and no report was retained.
    EXPECT_DEATH((void)set.lastVerify(), "footprint-less");
}

} // namespace
} // namespace pimhe

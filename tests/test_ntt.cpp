/**
 * @file
 * Tests for the NTT engine, RNS basis and the RNS+NTT convolver.
 */

#include <gtest/gtest.h>

#include "bfv/params.h"
#include "modular/mod64.h"
#include "ntt/ntt.h"
#include "ntt/rns.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::kSeed;

NttTable
makeTable(std::size_t n, int bits = 40)
{
    return NttTable(findNttPrimes(bits, 2 * n, 1)[0], n);
}

TEST(Ntt, ForwardInverseRoundTrip)
{
    for (const std::size_t n : {4ul, 16ul, 64ul, 256ul, 1024ul}) {
        auto table = makeTable(n);
        Rng rng(kSeed + n);
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = rng.uniform(table.prime());
        auto w = v;
        table.forward(w);
        EXPECT_NE(w, v) << "transform should not be identity";
        table.inverse(w);
        EXPECT_EQ(w, v) << "n=" << n;
    }
}

TEST(Ntt, TransformIsLinear)
{
    auto table = makeTable(64);
    const std::uint64_t p = table.prime();
    Rng rng(kSeed);
    std::vector<std::uint64_t> a(64), b(64), sum(64);
    for (std::size_t i = 0; i < 64; ++i) {
        a[i] = rng.uniform(p);
        b[i] = rng.uniform(p);
        sum[i] = addMod64(a[i], b[i], p);
    }
    table.forward(a);
    table.forward(b);
    table.forward(sum);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(sum[i], addMod64(a[i], b[i], p));
}

TEST(Ntt, MultiplyMatchesSchoolbookConvolution)
{
    const std::size_t n = 32;
    auto table = makeTable(n);
    const std::uint64_t p = table.prime();
    Rng rng(kSeed + 5);
    for (int it = 0; it < 20; ++it) {
        std::vector<std::uint64_t> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = rng.uniform(p);
            b[i] = rng.uniform(p);
        }
        // Reference negacyclic schoolbook over Z_p.
        std::vector<std::uint64_t> expect(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                const std::uint64_t prod = mulMod64(a[i], b[j], p);
                const std::size_t k = i + j;
                if (k < n)
                    expect[k] = addMod64(expect[k], prod, p);
                else
                    expect[k - n] = subMod64(expect[k - n], prod, p);
            }
        }
        EXPECT_EQ(table.multiply(a, b), expect) << "iter " << it;
    }
}

TEST(Ntt, MultiplyByDelta)
{
    const std::size_t n = 16;
    auto table = makeTable(n);
    Rng rng(kSeed + 6);
    std::vector<std::uint64_t> a(n), delta(n, 0);
    for (auto &x : a)
        x = rng.uniform(table.prime());
    delta[0] = 1;
    EXPECT_EQ(table.multiply(a, delta), a);
}

TEST(Ntt, RejectsBadParameters)
{
    EXPECT_DEATH(NttTable(97, 64), "does not support");
    EXPECT_DEATH(makeTable(12), "power of two");
    EXPECT_DEATH(
        {
            auto t = makeTable(16);
            std::vector<std::uint64_t> wrong(8, 0);
            t.forward(wrong);
        },
        "length mismatch");
}

TEST(RnsBasis, DecomposeRecombineRoundTrip)
{
    RnsBasis basis(findNttPrimes(40, 64, 5));
    Rng rng(kSeed + 9);
    for (int it = 0; it < 200; ++it) {
        // Values strictly below the basis product.
        const U256 v =
            mod(pimhe::testing::randomWide<8>(rng), basis.product());
        const auto residues = basis.decompose(v);
        EXPECT_EQ(basis.recombine(residues), v) << "iter " << it;
    }
}

TEST(RnsBasis, RecombineEdges)
{
    RnsBasis basis(findNttPrimes(35, 16, 3));
    const U256 zero;
    EXPECT_EQ(basis.recombine(basis.decompose(zero)), zero);
    const U256 pm1 = basis.product() - U256(1ULL);
    EXPECT_EQ(basis.recombine(basis.decompose(pm1)), pm1);
}

TEST(RnsBasis, RejectsBadBases)
{
    EXPECT_DEATH(RnsBasis({}), "empty");
    EXPECT_DEATH(RnsBasis({8ULL}), "not prime");
    EXPECT_DEATH(RnsBasis({17ULL, 17ULL}), "duplicate");
}

TEST(RnsBasis, ForExactConvolutionSizesProduct)
{
    const auto basis = RnsBasis::forExactConvolution(1024, 230);
    EXPECT_GE(basis.product().bitLength(), 230u);
    for (const auto p : basis.primes())
        EXPECT_EQ(p % 2048, 1u);
}

template <typename T>
class RnsConvWidths : public ::testing::Test
{
};

using ConvTypes = ::testing::Types<WideInt<1>, WideInt<2>, WideInt<4>>;
TYPED_TEST_SUITE(RnsConvWidths, ConvTypes);

TYPED_TEST(RnsConvWidths, MatchesSchoolbookConvolver)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    const auto params = standardParams<N>().withDegree(32);
    RingContext<N> ring(params.n, params.q);
    const SchoolbookConvolver<N> ref(ring);
    const RnsNttConvolver<N> fast(ring);
    Rng rng(kSeed + 21 + N);
    for (int it = 0; it < 10; ++it) {
        const auto a = ring.sampleUniform(rng);
        const auto b = ring.sampleUniform(rng);
        const auto r1 = ref.convolveCentered(a, b);
        const auto r2 = fast.convolveCentered(a, b);
        ASSERT_EQ(r1.size(), r2.size());
        for (std::size_t i = 0; i < r1.size(); ++i)
            EXPECT_EQ(r1[i], r2[i]) << "coeff " << i << " iter " << it;
    }
}

TYPED_TEST(RnsConvWidths, RnsMultiplierMatchesSchoolbookModQ)
{
    constexpr std::size_t N = TypeParam::numLimbs;
    const auto params = standardParams<N>().withDegree(64);
    RingContext<N> ring(params.n, params.q);
    const RnsPolyMultiplier<N> mult(ring);
    Rng rng(kSeed + 33 + N);
    for (int it = 0; it < 5; ++it) {
        const auto a = ring.sampleUniform(rng);
        const auto b = ring.sampleUniform(rng);
        EXPECT_EQ(mult.multiply(a, b), ring.mulSchoolbook(a, b))
            << "iter " << it;
    }
}

TEST(RnsConv, FullDegreeSpotCheck)
{
    // One full-size (n=4096, 128-bit) product through the NTT engine,
    // spot-checked against schoolbook on a few coefficients via the
    // mod-q identity with x = delta polynomial products.
    const auto params = standardParams<4>();
    RingContext<4> ring(params.n, params.q);
    const RnsNttConvolver<4> fast(ring);
    Rng rng(kSeed + 55);
    auto a = ring.sampleUniform(rng);
    Polynomial<4> delta(params.n);
    delta[0] = U128(1ULL);
    const auto conv = fast.convolveCentered(a, delta);
    for (std::size_t i = 0; i < params.n; i += 257) {
        const auto [mag, neg] = ring.toCentered(a[i]);
        const U256 expect = signed256::fromSignMagnitude(
            mag.convert<8>(), neg);
        EXPECT_EQ(conv[i], expect) << "coeff " << i;
    }
}

} // namespace
} // namespace pimhe

/**
 * @file
 * NTT-on-PIM kernel tests: the DPU transform must match the host NTT
 * engine bit-for-bit, across shapes and tasklet counts, and its
 * instruction count must stay data-independent.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "ntt/ntt.h"
#include "pimhe/ntt_kernel.h"
#include "test_util.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using namespace pimhe::pimhe_kernels;
using pimhe::testing::kSeed;

/** psi / psi^-1 tables in bit-reversed order, as the kernel expects. */
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
psiTables(std::uint32_t p, std::uint32_t n)
{
    const std::uint64_t psi = primitiveRoot(p, 2 * n);
    const std::uint64_t psi_inv = invMod64(psi, p);
    int log_n = 0;
    while ((1u << log_n) < n)
        ++log_n;
    std::vector<std::uint32_t> fwd(n), inv(n);
    std::uint64_t pw = 1, pwi = 1;
    std::vector<std::uint64_t> pows(n), powis(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        pows[i] = pw;
        powis[i] = pwi;
        pw = mulMod64(pw, psi, p);
        pwi = mulMod64(pwi, psi_inv, p);
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t r = 0;
        std::uint32_t x = i;
        for (int b = 0; b < log_n; ++b) {
            r = (r << 1) | (x & 1);
            x >>= 1;
        }
        fwd[i] = static_cast<std::uint32_t>(pows[r]);
        inv[i] = static_cast<std::uint32_t>(powis[r]);
    }
    return {fwd, inv};
}

void
writeU32s(Dpu &dpu, std::uint64_t addr,
          const std::vector<std::uint32_t> &v)
{
    dpu.mram().write(addr,
                     reinterpret_cast<const std::uint8_t *>(v.data()),
                     v.size() * 4);
}

std::vector<std::uint32_t>
readU32s(Dpu &dpu, std::uint64_t addr, std::size_t count)
{
    std::vector<std::uint32_t> v(count);
    dpu.mram().read(addr, reinterpret_cast<std::uint8_t *>(v.data()),
                    count * 4);
    return v;
}

TEST(DpuModMul30, MatchesMulMod64)
{
    DpuConfig cfg;
    Wram wram(cfg.wramBytes);
    Mram mram(cfg.mramBytes);
    TaskletStats stats;
    TaskletCtx ctx(0, 1, cfg, wram, mram, stats);

    const auto p = static_cast<std::uint32_t>(findNttPrimes(30, 64, 1)[0]);
    const std::uint32_t mu = static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(1) << 60) / p);
    Rng rng(kSeed);
    for (int it = 0; it < 500; ++it) {
        const std::uint32_t a =
            static_cast<std::uint32_t>(rng.uniform(p));
        const std::uint32_t b =
            static_cast<std::uint32_t>(rng.uniform(p));
        EXPECT_EQ(dpuModMul30(ctx, a, b, p, mu), mulMod64(a, b, p))
            << a << " * " << b << " mod " << p;
    }
    // Edge operands.
    EXPECT_EQ(dpuModMul30(ctx, p - 1, p - 1, p, mu),
              mulMod64(p - 1, p - 1, p));
    EXPECT_EQ(dpuModMul30(ctx, 0, p - 1, p, mu), 0u);
}

TEST(DpuModAddSub30, MatchReference)
{
    DpuConfig cfg;
    Wram wram(cfg.wramBytes);
    Mram mram(cfg.mramBytes);
    TaskletStats stats;
    TaskletCtx ctx(0, 1, cfg, wram, mram, stats);
    const auto p = static_cast<std::uint32_t>(findNttPrimes(30, 64, 1)[0]);
    Rng rng(kSeed + 1);
    for (int it = 0; it < 300; ++it) {
        const std::uint32_t a =
            static_cast<std::uint32_t>(rng.uniform(p));
        const std::uint32_t b =
            static_cast<std::uint32_t>(rng.uniform(p));
        EXPECT_EQ(dpuModAdd30(ctx, a, b, p), addMod64(a, b, p));
        EXPECT_EQ(dpuModSub30(ctx, a, b, p), subMod64(a, b, p));
    }
}

struct NttShape
{
    std::uint32_t n;
    std::uint32_t count;
    unsigned tasklets;
};

class NttKernelShapes : public ::testing::TestWithParam<NttShape>
{
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, NttKernelShapes,
    ::testing::Values(NttShape{16, 1, 1}, NttShape{16, 5, 3},
                      NttShape{64, 4, 4}, NttShape{128, 3, 12},
                      NttShape{256, 2, 2}, NttShape{64, 13, 11}),
    [](const auto &tpi) {
        return "n" + std::to_string(tpi.param.n) + "c" +
               std::to_string(tpi.param.count) + "t" +
               std::to_string(tpi.param.tasklets);
    });

TEST_P(NttKernelShapes, MatchesHostNttEngine)
{
    const auto [n, count, tasklets] = GetParam();
    const std::uint32_t p = static_cast<std::uint32_t>(
        findNttPrimes(30, 2 * n, 1)[0]);
    auto kp = makeNttParams(p, n, count);
    const auto [psi, psi_inv] = psiTables(p, n);

    NttTable host(p, n);
    Rng rng(kSeed + n + count);

    Dpu dpu(DpuConfig{});
    writeU32s(dpu, kp.mramPsi, psi);
    writeU32s(dpu, kp.mramPsiInv, psi_inv);

    std::vector<std::vector<std::uint64_t>> as(count), bs(count);
    std::vector<std::uint32_t> flat_a, flat_b;
    for (std::uint32_t c = 0; c < count; ++c) {
        as[c].resize(n);
        bs[c].resize(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            as[c][i] = rng.uniform(p);
            bs[c][i] = rng.uniform(p);
            flat_a.push_back(static_cast<std::uint32_t>(as[c][i]));
            flat_b.push_back(static_cast<std::uint32_t>(bs[c][i]));
        }
    }
    writeU32s(dpu, kp.mramA, flat_a);
    writeU32s(dpu, kp.mramB, flat_b);

    dpu.run(tasklets, makeNttMulKernel(kp));

    const auto out = readU32s(dpu, kp.mramOut,
                              static_cast<std::size_t>(count) * n);
    for (std::uint32_t c = 0; c < count; ++c) {
        const auto expect = host.multiply(as[c], bs[c]);
        for (std::uint32_t i = 0; i < n; ++i)
            EXPECT_EQ(out[c * n + i], expect[i])
                << "pair " << c << " coeff " << i;
    }
}

TEST(NttKernel, InstructionCountIsDataIndependent)
{
    const std::uint32_t n = 64;
    const std::uint32_t p = static_cast<std::uint32_t>(
        findNttPrimes(30, 2 * n, 1)[0]);
    auto kp = makeNttParams(p, n, 2);
    const auto [psi, psi_inv] = psiTables(p, n);
    Rng rng(kSeed + 5);
    std::uint64_t expected = 0;
    for (int it = 0; it < 4; ++it) {
        Dpu dpu(DpuConfig{});
        writeU32s(dpu, kp.mramPsi, psi);
        writeU32s(dpu, kp.mramPsiInv, psi_inv);
        std::vector<std::uint32_t> a(2 * n), b(2 * n);
        for (auto &x : a)
            x = static_cast<std::uint32_t>(rng.uniform(p));
        for (auto &x : b)
            x = static_cast<std::uint32_t>(rng.uniform(p));
        writeU32s(dpu, kp.mramA, a);
        writeU32s(dpu, kp.mramB, b);
        const auto stats = dpu.run(8, makeNttMulKernel(kp));
        if (it == 0)
            expected = stats.totalInstructions();
        else
            ASSERT_EQ(stats.totalInstructions(), expected);
    }
}

TEST(NttKernel, AsymptoticallyBeatsSchoolbookOnDpu)
{
    // The future-work payoff: even on gen1 (software multiplier), the
    // O(n log n) product overtakes the O(n^2) convolution kernel.
    const std::uint32_t n = 256;
    const std::uint32_t p = static_cast<std::uint32_t>(
        findNttPrimes(30, 2 * n, 1)[0]);
    auto kp = makeNttParams(p, n, 1);
    const auto [psi, psi_inv] = psiTables(p, n);
    Dpu dpu(DpuConfig{});
    writeU32s(dpu, kp.mramPsi, psi);
    writeU32s(dpu, kp.mramPsiInv, psi_inv);
    std::vector<std::uint32_t> zeros(n, 1);
    writeU32s(dpu, kp.mramA, zeros);
    writeU32s(dpu, kp.mramB, zeros);
    const auto ntt_stats = dpu.run(1, makeNttMulKernel(kp));

    // Schoolbook convolution kernel at the same degree (32-bit).
    ConvKernelParams cp;
    cp.n = n;
    cp.limbs = 1;
    cp.q = {p, 0, 0, 0};
    cp.halfQ = {p / 2, 0, 0, 0};
    cp.mramA = 0;
    cp.mramB = n * 4;
    cp.mramOut = 2 * n * 4;
    Dpu dpu2(DpuConfig{});
    std::vector<std::uint8_t> z(n * 4, 0);
    dpu2.mram().write(cp.mramA, z.data(), z.size());
    dpu2.mram().write(cp.mramB, z.data(), z.size());
    const auto conv_stats =
        dpu2.run(1, makeNegacyclicConvKernel(cp));

    EXPECT_LT(ntt_stats.totalInstructions() * 4,
              conv_stats.totalInstructions())
        << "NTT should win by >4x at n=256 already";
}

TEST(NttKernel, RejectsBadPrimes)
{
    EXPECT_DEATH(makeNttParams(1u << 30, 64, 1), "too wide");
    EXPECT_DEATH(makeNttParams(97, 64, 1), "not NTT-friendly");
}

} // namespace
} // namespace pimhe

/**
 * @file
 * Observability-layer tests: JSON model round-trips, logging level
 * control and sink capture, metrics registry shard-and-merge
 * semantics, trace export schemas, and — most importantly — the
 * determinism contract: modelled simulator output must be
 * bit-identical whether instrumentation is on or off and at any host
 * thread count, and the disabled hot path must not allocate.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "bigint/wide_int.h"
#include "pim/system.h"
#include "pimhe/kernels.h"

// ---------------------------------------------------------------------
// Counting global allocator: the overhead guard asserts the disabled
// instrumentation hot path performs zero heap allocations. Only the
// default-aligned forms are replaced; the aligned overloads keep their
// library pairing.
//
// GCC's -Wmismatched-new-delete cannot see that these replacements
// pair malloc with free by construction: at -O2 it inlines the
// replaced operator delete into standard-library call sites and
// flags free() against the *default* operator new. Replacing the
// global allocator this way is well-defined, so silence the false
// positive for this TU.
// ---------------------------------------------------------------------
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

static std::atomic<std::size_t> g_heapAllocs{0};

void *
operator new(std::size_t size)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace pimhe {
namespace {

// ---------------------------------------------------------------------
// Shared workload: a small but real vector-multiply launch through
// DpuSet, the same shape the benches drive.
// ---------------------------------------------------------------------

pim::DpuSet
runVecMulWorkload(std::size_t host_threads, std::size_t dpus = 3,
                  unsigned tasklets = 8, std::size_t elems = 64)
{
    pim::SystemConfig cfg = pim::paperSystem();
    cfg.numDpus = dpus;
    cfg.hostThreads = host_threads;
    pim::DpuSet set(cfg, dpus);

    pimhe_kernels::VecKernelParams kp;
    kp.elems = static_cast<std::uint32_t>(elems);
    kp.limbs = 2;
    kp.k = 54;
    kp.c = 77823;
    const U128 q = U128::oneShl(kp.k) - U128(kp.c);
    for (std::size_t l = 0; l < 4; ++l)
        kp.q[l] = q.limb(l);
    const std::size_t arr_bytes = ((elems * 2 * 4 + 7) / 8) * 8;
    kp.mramA = 0;
    kp.mramB = arr_bytes;
    kp.mramOut = 2 * arr_bytes;

    std::vector<std::uint8_t> data(arr_bytes, 1);
    for (std::size_t d = 0; d < dpus; ++d) {
        set.copyToMram(d, kp.mramA, data);
        set.copyToMram(d, kp.mramB, data);
    }
    set.launch(tasklets, pimhe_kernels::makeVecMulModQKernel(kp));

    std::vector<std::uint8_t> out(arr_bytes);
    for (std::size_t d = 0; d < dpus; ++d)
        set.copyFromMram(d, kp.mramOut, out);
    return set;
}

/** RAII: force global obs state to a known setting, restore after. */
struct ObsState
{
    ObsState(bool metrics, bool trace)
    {
        obs::Registry::global().setEnabled(metrics);
        obs::Tracer::global().setEnabled(trace);
        obs::Registry::global().reset();
        obs::Tracer::global().clear();
    }

    ~ObsState()
    {
        obs::Registry::global().setEnabled(false);
        obs::Tracer::global().setEnabled(false);
        obs::Registry::global().reset();
        obs::Tracer::global().clear();
    }
};

// ---------------------------------------------------------------------
// JSON model
// ---------------------------------------------------------------------

TEST(Json, RoundTripPreservesStructure)
{
    obs::JsonValue doc = obs::JsonValue::makeObject();
    doc.set("name", obs::JsonValue("pim \"quoted\" \\ path\n"));
    doc.set("count", obs::JsonValue(std::uint64_t(1) << 53));
    doc.set("ratio", obs::JsonValue(0.25));
    doc.set("flag", obs::JsonValue(true));
    doc.set("nothing", obs::JsonValue());
    obs::JsonValue arr = obs::JsonValue::makeArray();
    arr.push(obs::JsonValue(1));
    arr.push(obs::JsonValue("two"));
    doc.set("items", std::move(arr));

    for (const int indent : {0, 2}) {
        const auto parsed = obs::parseJson(doc.dump(indent));
        ASSERT_TRUE(parsed.ok) << parsed.error;
        const obs::JsonValue &v = parsed.value;
        EXPECT_EQ(v.find("name")->asString(),
                  "pim \"quoted\" \\ path\n");
        EXPECT_EQ(v.find("count")->asNumber(),
                  static_cast<double>(std::uint64_t(1) << 53));
        EXPECT_DOUBLE_EQ(v.find("ratio")->asNumber(), 0.25);
        EXPECT_TRUE(v.find("flag")->asBool());
        EXPECT_TRUE(v.find("nothing")->isNull());
        ASSERT_EQ(v.find("items")->items().size(), 2u);
        EXPECT_EQ(v.find("items")->items()[1].asString(), "two");
    }
}

TEST(Json, ParserRejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
          "\"unterminated", "{\"a\":1} trailing", "[1 2]"}) {
        const auto r = obs::parseJson(bad);
        EXPECT_FALSE(r.ok) << "accepted: " << bad;
        EXPECT_FALSE(r.error.empty());
    }
}

// ---------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------

TEST(Logging, LevelFiltersBeforeSink)
{
    std::vector<std::pair<LogLevel, std::string>> seen;
    setLogSink([&](LogLevel lvl, const std::string &msg) {
        seen.emplace_back(lvl, msg);
    });

    setLogLevel(LogLevel::Quiet);
    warn("dropped warn");
    inform("dropped info");
    EXPECT_TRUE(seen.empty());

    setLogLevel(LogLevel::Warn);
    warn("kept warn");
    inform("still dropped");
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].second, "kept warn");
    EXPECT_EQ(seen[0].first, LogLevel::Warn);

    setLogLevel(LogLevel::Inform);
    inform("kept info ", 42);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[1].second, "kept info 42");

    setLogSink({});
    setLogLevel(LogLevel::Inform);
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(Metrics, CountersMergeAcrossThreads)
{
    obs::Registry reg;
    reg.setEnabled(true);
    obs::Counter c = reg.counter("test.adds");

    constexpr int kThreads = 8, kAdds = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add(1);
        });
    for (auto &w : workers)
        w.join();

    std::uint64_t total = 0;
    ASSERT_TRUE(reg.scrape().counterValue("test.adds", &total));
    EXPECT_EQ(total, std::uint64_t(kThreads) * kAdds);
}

TEST(Metrics, DisabledRegistryRecordsNothing)
{
    obs::Registry reg;
    obs::Counter c = reg.counter("test.noop");
    obs::Histogram h = reg.histogram("test.noop_ms");
    c.add(5);
    h.observe(1.0);
    reg.setEnabled(true);
    const obs::Snapshot snap = reg.scrape();
    std::uint64_t v = 99;
    ASSERT_TRUE(snap.counterValue("test.noop", &v));
    EXPECT_EQ(v, 0u);
    obs::HistogramStat hs;
    ASSERT_TRUE(snap.histogramStat("test.noop_ms", &hs));
    EXPECT_EQ(hs.count, 0u);
}

TEST(Metrics, HistogramStatsFromUnsortedObservations)
{
    obs::Registry reg;
    reg.setEnabled(true);
    obs::Histogram h = reg.histogram("test.lat_ms");
    for (const double v : {5.0, 1.0, 4.0, 2.0, 3.0})
        h.observe(v);
    obs::HistogramStat hs;
    ASSERT_TRUE(reg.scrape().histogramStat("test.lat_ms", &hs));
    EXPECT_EQ(hs.count, 5u);
    EXPECT_DOUBLE_EQ(hs.sum, 15.0);
    EXPECT_DOUBLE_EQ(hs.min, 1.0);
    EXPECT_DOUBLE_EQ(hs.max, 5.0);
    EXPECT_DOUBLE_EQ(hs.p50, 3.0);
    EXPECT_DOUBLE_EQ(hs.p95, 5.0);
}

TEST(Metrics, ResetZeroesButKeepsSlots)
{
    obs::Registry reg;
    reg.setEnabled(true);
    obs::Counter c = reg.counter("test.reset");
    reg.gauge("test.gauge").set(7.0);
    c.add(3);
    reg.reset();
    const obs::Snapshot snap = reg.scrape();
    std::uint64_t v = 99;
    ASSERT_TRUE(snap.counterValue("test.reset", &v));
    EXPECT_EQ(v, 0u);
    // The handle stays valid after reset.
    c.add(2);
    ASSERT_TRUE(reg.scrape().counterValue("test.reset", &v));
    EXPECT_EQ(v, 2u);
}

TEST(Metrics, ModelledEqualsIgnoresHostMetrics)
{
    obs::Registry a, b;
    a.setEnabled(true);
    b.setEnabled(true);
    a.counter("pim.launch.count").add(1);
    b.counter("pim.launch.count").add(1);
    a.histogram("host.launch.wall_ms").observe(1.0);
    b.histogram("host.launch.wall_ms").observe(250.0);

    std::string why;
    EXPECT_TRUE(a.scrape().modelledEquals(b.scrape(), &why)) << why;

    b.counter("pim.launch.count").add(1);
    EXPECT_FALSE(a.scrape().modelledEquals(b.scrape(), &why));
    EXPECT_NE(why.find("pim.launch.count"), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace export + validators
// ---------------------------------------------------------------------

TEST(Trace, RealRunExportsValidChromeTraceAndJsonl)
{
    ObsState state(/*metrics=*/true, /*trace=*/true);
    runVecMulWorkload(1);

    obs::Tracer &tracer = obs::Tracer::global();
    EXPECT_GT(tracer.spanCount(), 0u);

    std::ostringstream chrome;
    tracer.writeChromeTrace(chrome);
    std::string err;
    EXPECT_TRUE(obs::validateChromeTraceJson(chrome.str(), &err))
        << err;

    std::ostringstream jsonl;
    tracer.writeJsonl(jsonl);
    EXPECT_TRUE(obs::validateTraceJsonl(jsonl.str(), &err)) << err;

    // The modelled track must contain the launch phases.
    EXPECT_NE(chrome.str().find("\"launch\""), std::string::npos);
    EXPECT_NE(chrome.str().find("\"kernel\""), std::string::npos);
    EXPECT_NE(chrome.str().find("\"dpu.run\""), std::string::npos);
}

TEST(Trace, MetricsSnapshotJsonValidates)
{
    ObsState state(/*metrics=*/true, /*trace=*/false);
    runVecMulWorkload(1);
    const std::string json =
        obs::snapshotToJson(obs::Registry::global().scrape());
    std::string err;
    EXPECT_TRUE(obs::validateMetricsJson(json, &err)) << err;
}

TEST(Trace, ValidatorRejectsBrokenTraces)
{
    std::string err;
    // Unbalanced B without E.
    const std::string unbalanced = R"({"schema":"pimhe-chrome-trace/v1",
        "traceEvents":[
          {"name":"a","ph":"B","pid":1,"tid":0,"ts":1}]})";
    EXPECT_FALSE(obs::validateChromeTraceJson(unbalanced, &err));

    // E name mismatching its B.
    const std::string mismatched = R"({"schema":"pimhe-chrome-trace/v1",
        "traceEvents":[
          {"name":"a","ph":"B","pid":1,"tid":0,"ts":1},
          {"name":"b","ph":"E","pid":1,"tid":0,"ts":2}]})";
    EXPECT_FALSE(obs::validateChromeTraceJson(mismatched, &err));

    // Time going backwards.
    const std::string backwards = R"({"schema":"pimhe-chrome-trace/v1",
        "traceEvents":[
          {"name":"a","ph":"B","pid":1,"tid":0,"ts":5},
          {"name":"a","ph":"E","pid":1,"tid":0,"ts":4}]})";
    EXPECT_FALSE(obs::validateChromeTraceJson(backwards, &err));

    // Missing schema tag.
    const std::string untagged =
        R"({"traceEvents":[
          {"name":"a","ph":"B","pid":1,"tid":0,"ts":1},
          {"name":"a","ph":"E","pid":1,"tid":0,"ts":2}]})";
    EXPECT_FALSE(obs::validateChromeTraceJson(untagged, &err));
}

TEST(Trace, BenchValidatorAcceptsAndRejects)
{
    std::string err;
    const std::string good = R"({
      "schema": "pimhe-bench/v1",
      "bench": "fig1a_vector_add", "experiment": "F1a",
      "title": "t", "repetitions": 1, "warmup": 0,
      "tables": [{"header": ["a", "b"], "rows": [["1", "2"]]}],
      "series": {"pim_ms": {"values": [1.0, 2.0], "p50": 1.0,
                 "p95": 2.0, "min": 1.0, "max": 2.0, "mean": 1.5}},
      "breakdowns": {},
      "band_checks": [{"label": "x", "value": 1.0, "lo": 0.5,
                       "hi": 2.0, "pass": true}]})";
    EXPECT_TRUE(obs::validateBenchJson(good, &err)) << err;

    // Row width disagreeing with the header.
    std::string bad_rows = good;
    bad_rows.replace(bad_rows.find("[[\"1\", \"2\"]]"),
                     std::string("[[\"1\", \"2\"]]").size(),
                     "[[\"1\"]]");
    EXPECT_FALSE(obs::validateBenchJson(bad_rows, &err));

    // Series with an empty sample vector.
    std::string bad_series = good;
    bad_series.replace(bad_series.find("[1.0, 2.0]"),
                       std::string("[1.0, 2.0]").size(), "[]");
    EXPECT_FALSE(obs::validateBenchJson(bad_series, &err));

    // Wrong schema tag.
    std::string bad_schema = good;
    bad_schema.replace(bad_schema.find("pimhe-bench/v1"),
                       std::string("pimhe-bench/v1").size(),
                       "pimhe-bench/v0");
    EXPECT_FALSE(obs::validateBenchJson(bad_schema, &err));
}

// ---------------------------------------------------------------------
// Determinism contract
// ---------------------------------------------------------------------

TEST(Determinism, MetricsIdenticalAtAnyHostThreadCount)
{
    ObsState state(/*metrics=*/true, /*trace=*/true);
    obs::Registry &reg = obs::Registry::global();

    runVecMulWorkload(1);
    const obs::Snapshot base = reg.scrape();

    for (const std::size_t threads : {8ul, 16ul}) {
        reg.reset();
        obs::Tracer::global().clear();
        runVecMulWorkload(threads);
        std::string why;
        EXPECT_TRUE(base.modelledEquals(reg.scrape(), &why))
            << "at " << threads << " host threads: " << why;
    }
}

TEST(Determinism, LaunchStatsIdenticalWithObservabilityOnOrOff)
{
    pim::LaunchStats off;
    {
        ObsState state(/*metrics=*/false, /*trace=*/false);
        off = runVecMulWorkload(4).lastLaunch();
    }
    pim::LaunchStats on;
    {
        ObsState state(/*metrics=*/true, /*trace=*/true);
        on = runVecMulWorkload(4).lastLaunch();
    }
    ASSERT_EQ(on.dpus.size(), off.dpus.size());
    for (std::size_t d = 0; d < on.dpus.size(); ++d) {
        EXPECT_EQ(on.dpus[d].cycles, off.dpus[d].cycles);
        EXPECT_EQ(on.dpus[d].totalInstructions(),
                  off.dpus[d].totalInstructions());
    }
    EXPECT_EQ(on.maxCycles, off.maxCycles);
    // Bit-exact doubles: the instrumentation must not perturb the
    // model, so plain equality is the right comparison.
    EXPECT_EQ(on.kernelMs, off.kernelMs);
    EXPECT_EQ(on.hostToDpuMs, off.hostToDpuMs);
    EXPECT_EQ(on.dpuToHostMs, off.dpuToHostMs);
    EXPECT_EQ(on.launchOverheadMs, off.launchOverheadMs);
}

TEST(Determinism, TotalModeledMsEqualsLaunchSum)
{
    ObsState state(/*metrics=*/true, /*trace=*/true);
    pim::SystemConfig cfg = pim::paperSystem();
    cfg.numDpus = 2;
    pim::DpuSet set(cfg, 2);

    pimhe_kernels::VecKernelParams kp;
    kp.elems = 32;
    kp.limbs = 1;
    kp.k = 27;
    kp.c = 2047;
    const U128 q = U128::oneShl(kp.k) - U128(kp.c);
    for (std::size_t l = 0; l < 4; ++l)
        kp.q[l] = q.limb(l);
    const std::size_t arr_bytes = ((32 * 4 + 7) / 8) * 8;
    kp.mramA = 0;
    kp.mramB = arr_bytes;
    kp.mramOut = 2 * arr_bytes;

    std::vector<std::uint8_t> buf(arr_bytes, 1);
    // A pre-launch read-back charges preLaunchDownloadMs.
    set.copyFromMram(0, kp.mramOut, buf);
    EXPECT_GT(set.preLaunchDownloadMs(), 0.0);

    for (int round = 0; round < 3; ++round) {
        for (std::size_t d = 0; d < 2; ++d) {
            set.copyToMram(d, kp.mramA, buf);
            set.copyToMram(d, kp.mramB, buf);
        }
        set.launch(4, pimhe_kernels::makeVecAddModQKernel(kp));
        for (std::size_t d = 0; d < 2; ++d)
            set.copyFromMram(d, kp.mramOut, buf);
    }

    ASSERT_EQ(set.launches().size(), 3u);
    double expect = set.preLaunchDownloadMs();
    for (const auto &l : set.launches())
        expect += l.totalMs();
    EXPECT_DOUBLE_EQ(set.totalModeledMs(), expect);
}

// ---------------------------------------------------------------------
// Overhead guard
// ---------------------------------------------------------------------

TEST(Overhead, DisabledInstrumentationDoesNotAllocate)
{
    obs::Registry reg; // stays disabled
    obs::Counter c = reg.counter("test.hot");
    obs::Histogram h = reg.histogram("test.hot_ms");
    obs::Tracer &tracer = obs::Tracer::global();
    ASSERT_FALSE(tracer.enabled());

    const std::size_t before =
        g_heapAllocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        c.add(1);
        h.observe(1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        obs::ScopedSpan span(tracer, 0, "hot");
        span.arg("k", 1.0);
    }
    const std::size_t after =
        g_heapAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before)
        << "disabled instrumentation allocated on the hot path";
}

} // namespace
} // namespace pimhe

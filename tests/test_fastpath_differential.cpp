/**
 * @file
 * Differential fuzzing of the compiled-kernel fast path against the
 * interpreter oracle.
 *
 * Two independent checks per grid point, for every registered kernel
 * family across (limb width, shape, tasklet count, host threads):
 *
 *  - a Shadow-mode launch runs both paths on every DPU and panics on
 *    any divergence in semantic outputs or modelled per-tasklet
 *    stats (the in-simulator oracle);
 *  - a pure Fast-mode launch on identically seeded DPUs is compared
 *    field by field against the shadow launch's (interpreter) stats
 *    and byte for byte against its surviving MRAM, proving the fast
 *    path alone reproduces the oracle — outputs, cycles, DMA bytes
 *    and stall cycles bit-identically.
 *
 * Mismatch-injection tests then corrupt a fast body on purpose
 * (off-by-one output tail, stale cycle formula, skipped shard row)
 * and require shadow mode to die with a diagnostic naming the
 * kernel, the DPU and the first diverging byte range or counter.
 *
 * End-to-end, whole BFV pipelines (PimHeSystem and PimConvolver) run
 * in shadow mode with decryption checks, so the fast path is also
 * exercised through the orchestration, resident-cache and transfer
 * layers.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "analysis/footprint.h"
#include "pimhe/fast_kernels.h"
#include "pimhe/kernels.h"
#include "pimhe/ntt_kernel.h"
#include "pimhe/orchestrator.h"
#include "test_util.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using namespace pimhe::pimhe_kernels;
using pimhe::testing::BfvHarness;
using pimhe::testing::kSeed;
using pimhe::testing::randomBelow;

constexpr unsigned kTaskletGrid[] = {1, 11, 16, 24};
constexpr std::size_t kThreadGrid[] = {1, 8};

SystemConfig
gridSystem(std::size_t dpus, std::size_t threads, ExecMode mode)
{
    SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.hostThreads = threads;
    cfg.execMode = mode;
    return cfg;
}

/** Exact equality of every modelled LaunchStats field (execMode and
 *  hostWallMs are legitimately different between the two runs). */
void
expectLaunchStatsEqual(const LaunchStats &interp, const LaunchStats &fast,
                       const std::string &what)
{
    ASSERT_EQ(interp.dpus.size(), fast.dpus.size()) << what;
    EXPECT_EQ(interp.maxCycles, fast.maxCycles) << what;
    EXPECT_EQ(interp.kernelMs, fast.kernelMs) << what;
    EXPECT_EQ(interp.hostToDpuMs, fast.hostToDpuMs) << what;
    EXPECT_EQ(interp.dpuToHostMs, fast.dpuToHostMs) << what;
    EXPECT_EQ(interp.launchOverheadMs, fast.launchOverheadMs) << what;
    for (std::size_t d = 0; d < interp.dpus.size(); ++d) {
        const auto &di = interp.dpus[d];
        const auto &df = fast.dpus[d];
        EXPECT_EQ(di.cycles, df.cycles) << what << " dpu " << d;
        ASSERT_EQ(di.tasklets.size(), df.tasklets.size())
            << what << " dpu " << d;
        for (std::size_t t = 0; t < di.tasklets.size(); ++t) {
            EXPECT_EQ(di.tasklets[t].instructions,
                      df.tasklets[t].instructions)
                << what << " dpu " << d << " tasklet " << t;
            EXPECT_EQ(di.tasklets[t].dmaTransfers,
                      df.tasklets[t].dmaTransfers)
                << what << " dpu " << d << " tasklet " << t;
            EXPECT_EQ(di.tasklets[t].dmaBytes, df.tasklets[t].dmaBytes)
                << what << " dpu " << d << " tasklet " << t;
            EXPECT_EQ(di.tasklets[t].dmaStallCycles,
                      df.tasklets[t].dmaStallCycles)
                << what << " dpu " << d << " tasklet " << t;
        }
    }
}

/**
 * Run one CompiledKernel under Shadow (internal oracle) and under
 * pure Fast on identically seeded DPU sets, then require the fast
 * launch to match the interpreter bit for bit in the declared output
 * regions and in every modelled stats field.
 */
void
runShadowAndFast(const CompiledKernel &ck, unsigned tasklets,
                 std::size_t dpus, std::size_t threads,
                 const std::vector<std::vector<std::uint8_t>> &mram_init,
                 std::uint64_t init_addr, const std::string &what)
{
    DpuSet shadow(gridSystem(dpus, threads, ExecMode::Shadow), dpus);
    DpuSet fast(gridSystem(dpus, threads, ExecMode::Fast), dpus);
    for (std::size_t d = 0; d < dpus; ++d) {
        shadow.dpuAt(d).mram().write(init_addr, mram_init[d].data(),
                                     mram_init[d].size());
        fast.dpuAt(d).mram().write(init_addr, mram_init[d].data(),
                                   mram_init[d].size());
    }

    // Shadow mode self-checks every DPU (panic on divergence) and
    // leaves the interpreter's MRAM and stats behind.
    const LaunchStats interp_stats = shadow.launch(tasklets, ck);
    ASSERT_EQ(interp_stats.execMode, ExecMode::Shadow) << what;
    const LaunchStats fast_stats = fast.launch(tasklets, ck);
    ASSERT_EQ(fast_stats.execMode, ExecMode::Fast) << what;

    expectLaunchStatsEqual(interp_stats, fast_stats, what);
    for (std::size_t d = 0; d < dpus; ++d) {
        for (const auto &region : ck.outputs) {
            std::vector<std::uint8_t> a(region.end - region.begin);
            std::vector<std::uint8_t> b(a.size());
            shadow.dpuAt(d).mram().read(region.begin, a.data(),
                                        a.size());
            fast.dpuAt(d).mram().read(region.begin, b.data(), b.size());
            EXPECT_EQ(a, b) << what << " dpu " << d << " output '"
                            << region.name << "'";
        }
    }
}

template <std::size_t L>
VecKernelParams
vecParamsFor(std::size_t elems)
{
    const auto q = standardParams<L>().q;
    VecKernelParams p;
    p.elems = static_cast<std::uint32_t>(elems);
    p.limbs = L;
    p.k = static_cast<std::uint32_t>(q.bitLength());
    p.c = static_cast<std::uint32_t>(
        (WideInt<L>::oneShl(p.k) - q).toUint64());
    for (std::size_t i = 0; i < L; ++i)
        p.q[i] = q.limb(i);
    const std::size_t arr = ((elems * L * 4 + 7) / 8) * 8;
    p.mramA = 0;
    p.mramB = arr;
    p.mramOut = 2 * arr;
    return p;
}

/** elems reduced elements as packed little-endian limb bytes. */
template <std::size_t L>
std::vector<std::uint8_t>
packedVec(Rng &rng, std::size_t elems)
{
    const auto q = standardParams<L>().q;
    std::vector<std::uint8_t> buf(elems * L * 4);
    for (std::size_t i = 0; i < elems; ++i) {
        const auto v = randomBelow<L>(rng, q);
        for (std::size_t l = 0; l < L; ++l) {
            const std::uint32_t limb = v.limb(l);
            std::memcpy(buf.data() + (i * L + l) * 4, &limb, 4);
        }
    }
    return buf;
}

template <std::size_t L>
int
runVecGrid()
{
    int iterations = 0;
    for (const std::size_t elems : {63u, 96u, 256u}) {
        for (const unsigned tasklets : kTaskletGrid) {
            for (const std::size_t threads : kThreadGrid) {
                Rng rng(kSeed + 1000 * L + 10 * elems + tasklets +
                        threads);
                const auto p = vecParamsFor<L>(elems);
                const std::size_t dpus = 2;
                std::vector<std::vector<std::uint8_t>> init(dpus);
                for (auto &m : init) {
                    m = packedVec<L>(rng, elems);
                    const auto b = packedVec<L>(rng, elems);
                    m.resize(p.mramB + b.size());
                    std::memcpy(m.data() + p.mramB, b.data(), b.size());
                }
                const std::string tag =
                    "L" + std::to_string(L) + " e" +
                    std::to_string(elems) + " t" +
                    std::to_string(tasklets) + " th" +
                    std::to_string(threads);
                runShadowAndFast(compiledVecAddModQ(p), tasklets, dpus,
                                 threads, init, 0, "vec-add " + tag);
                runShadowAndFast(compiledVecMulModQ(p), tasklets, dpus,
                                 threads, init, 0, "vec-mul " + tag);

                // Fused (a + b) * c: the third operand lives where the
                // plain kernels put their result.
                FusedKernelParams fp;
                fp.vec = p;
                fp.mramC = p.mramOut;
                fp.vec.mramOut = p.mramOut + (p.mramB - p.mramA);
                std::vector<std::vector<std::uint8_t>> finit(dpus);
                for (std::size_t d = 0; d < dpus; ++d) {
                    finit[d] = init[d];
                    const auto c = packedVec<L>(rng, elems);
                    finit[d].resize(fp.mramC + c.size());
                    std::memcpy(finit[d].data() + fp.mramC, c.data(),
                                c.size());
                }
                runShadowAndFast(compiledVecAddMulModQ(fp), tasklets,
                                 dpus, threads, finit, 0,
                                 "vec-fused " + tag);

                // In-place fold round (mramOut == mramA), as the
                // resident tree reduction launches it.
                VecKernelParams rp = p;
                rp.mramOut = rp.mramA;
                runShadowAndFast(compiledVecAddModQ(rp), tasklets, dpus,
                                 threads, init, 0, "vec-reduce " + tag);
                iterations += 4;
            }
        }
    }
    return iterations;
}

template <std::size_t L>
ConvKernelParams
convParamsFor(std::size_t n)
{
    const auto q = standardParams<L>().q;
    ConvKernelParams p;
    p.n = static_cast<std::uint32_t>(n);
    p.limbs = L;
    for (std::size_t i = 0; i < L; ++i)
        p.q[i] = q.limb(i);
    const auto half = q.shr(1);
    for (std::size_t i = 0; i < L; ++i)
        p.halfQ[i] = half.limb(i);
    p.mramA = 0;
    p.mramB = n * L * 4;
    p.mramOut = 2 * n * L * 4;
    return p;
}

template <std::size_t L>
int
runConvGrid()
{
    int iterations = 0;
    for (const std::size_t n : {16u, 32u}) {
        for (const unsigned tasklets : kTaskletGrid) {
            for (const std::size_t threads : kThreadGrid) {
                Rng rng(kSeed + 77 * L + 10 * n + tasklets + threads);
                const auto p = convParamsFor<L>(n);
                const std::string tag =
                    "L" + std::to_string(L) + " n" + std::to_string(n) +
                    " t" + std::to_string(tasklets) + " th" +
                    std::to_string(threads);

                std::vector<std::vector<std::uint8_t>> init(1);
                init[0] = packedVec<L>(rng, n);
                const auto b = packedVec<L>(rng, n);
                init[0].resize(p.mramB + b.size());
                std::memcpy(init[0].data() + p.mramB, b.data(),
                            b.size());
                runShadowAndFast(compiledNegacyclicConv(p), tasklets, 1,
                                 threads, init, 0, "conv " + tag);

                // 2-DPU row-sharded variant: per-DPU metadata blocks
                // select disjoint row ranges of the same operands.
                ConvKernelParams sp = p;
                const auto [b0, e0] = analysis::rowShardRange(
                    static_cast<std::uint32_t>(n), 2, 0);
                sp.rowBegin = b0;
                sp.rowEnd = e0;
                sp.mramMeta =
                    sp.mramOut +
                    static_cast<std::uint64_t>(e0 - b0) *
                        sp.accLimbs() * 4;
                std::vector<std::vector<std::uint8_t>> sinit(2);
                for (std::size_t d = 0; d < 2; ++d) {
                    const auto [rb, re] = analysis::rowShardRange(
                        static_cast<std::uint32_t>(n), 2,
                        static_cast<std::uint32_t>(d));
                    sinit[d] = init[0];
                    sinit[d].resize(sp.mramMeta + 8);
                    const std::uint32_t meta[2] = {rb, re};
                    std::memcpy(sinit[d].data() + sp.mramMeta, meta, 8);
                }
                runShadowAndFast(compiledNegacyclicConv(sp), tasklets,
                                 2, threads, sinit, 0,
                                 "conv-sharded " + tag);
                iterations += 2;
            }
        }
    }
    return iterations;
}

int
runNttGrid()
{
    int iterations = 0;
    for (const std::uint32_t n : {64u, 256u}) {
        for (const unsigned tasklets : kTaskletGrid) {
            for (const std::size_t threads : kThreadGrid) {
                const auto primes = findNttPrimes(30, 2ULL * n, 1);
                if (primes.empty()) {
                    ADD_FAILURE() << "no NTT prime for n=" << n;
                    continue;
                }
                const auto p =
                    static_cast<std::uint32_t>(primes.front());
                const std::uint32_t count = 5;
                const auto kp = makeNttParams(p, n, count);

                Rng rng(kSeed + 31 * n + tasklets + threads);
                const std::uint64_t psi = primitiveRoot(p, 2 * n);
                const std::uint64_t psi_inv = invMod64(psi, p);
                int log_n = 0;
                while ((1u << log_n) < n)
                    ++log_n;
                std::vector<std::uint32_t> words(
                    static_cast<std::size_t>(kp.mramOut) / 4, 0);
                std::uint64_t pw = 1, pwi = 1;
                std::vector<std::uint64_t> pows(n), powis(n);
                for (std::uint32_t i = 0; i < n; ++i) {
                    pows[i] = pw;
                    powis[i] = pwi;
                    pw = mulMod64(pw, psi, p);
                    pwi = mulMod64(pwi, psi_inv, p);
                }
                for (std::uint32_t i = 0; i < n; ++i) {
                    std::uint32_t r = 0, x = i;
                    for (int bit = 0; bit < log_n; ++bit) {
                        r = (r << 1) | (x & 1);
                        x >>= 1;
                    }
                    words[kp.mramPsi / 4 + i] =
                        static_cast<std::uint32_t>(pows[r]);
                    words[kp.mramPsiInv / 4 + i] =
                        static_cast<std::uint32_t>(powis[r]);
                }
                for (std::uint32_t i = 0; i < count * n; ++i) {
                    words[kp.mramA / 4 + i] =
                        static_cast<std::uint32_t>(rng.uniform(p));
                    words[kp.mramB / 4 + i] =
                        static_cast<std::uint32_t>(rng.uniform(p));
                }
                std::vector<std::vector<std::uint8_t>> init(1);
                init[0].resize(words.size() * 4);
                std::memcpy(init[0].data(), words.data(),
                            init[0].size());

                runShadowAndFast(compiledNttMul(kp), tasklets, 1,
                                 threads, init, 0,
                                 "ntt n" + std::to_string(n) + " t" +
                                     std::to_string(tasklets) + " th" +
                                     std::to_string(threads));
                iterations += 1;
            }
        }
    }
    return iterations;
}

/**
 * The full fuzz grid in one test so the iteration budget is counted
 * where it runs: every registered kernel family, across widths,
 * shapes, tasklet counts 1/11/16/24 and host threads 1/8. Each
 * iteration is a shadow launch (self-checking oracle) plus a pure
 * fast launch compared bit for bit against the interpreter.
 */
TEST(FastPathDifferential, FullGridIsBitExact)
{
    int iterations = 0;
    iterations += runVecGrid<1>();
    iterations += runVecGrid<2>();
    iterations += runVecGrid<4>();
    iterations += runConvGrid<1>();
    iterations += runConvGrid<2>();
    iterations += runConvGrid<4>();
    iterations += runNttGrid();
    EXPECT_GE(iterations, 200)
        << "fuzz grid shrank below the 200-iteration budget";
}

// ----- mismatch injection: a wrong fast body must be caught -----

std::vector<std::vector<std::uint8_t>>
smallVecInit(const VecKernelParams &p, std::size_t dpus)
{
    Rng rng(kSeed + 4242);
    std::vector<std::vector<std::uint8_t>> init(dpus);
    for (auto &m : init) {
        m = packedVec<2>(rng, p.elems);
        const auto b = packedVec<2>(rng, p.elems);
        m.resize(p.mramB + b.size());
        std::memcpy(m.data() + p.mramB, b.data(), b.size());
    }
    return init;
}

TEST(FastPathMismatchDeath, OffByOneOutputTailIsCaught)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto p = vecParamsFor<2>(65);
    CompiledKernel ck = compiledVecAddModQ(p);
    const auto base = ck.fast;
    // Deliberate bug: the fast body mangles the final element's last
    // byte — an off-by-one tail.
    ck.fast = [base, p](FastCtx &f) {
        base(f);
        const std::uint64_t last =
            p.mramOut +
            static_cast<std::uint64_t>(p.elems) * p.elemBytes() - 1;
        std::uint8_t byte = 0;
        f.mram.read(last, &byte, 1);
        byte ^= 0x01;
        f.mram.write(last, &byte, 1);
    };

    DpuSet set(gridSystem(1, 1, ExecMode::Shadow), 1);
    const auto init = smallVecInit(p, 1);
    set.dpuAt(0).mram().write(0, init[0].data(), init[0].size());
    EXPECT_DEATH(
        set.launch(12, ck),
        "shadow-mode divergence: dpu 0.*vec-add-modq.*"
        "output 'result' diverges in mram bytes");
}

TEST(FastPathMismatchDeath, StaleCycleFormulaIsCaught)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto p = vecParamsFor<2>(64);
    CompiledKernel ck = compiledVecMulModQ(p);
    const auto base = ck.fast;
    // Deliberate bug: a stale cost formula over-charges tasklet 0 by
    // one instruction (outputs stay correct, only the model drifts).
    ck.fast = [base](FastCtx &f) {
        base(f);
        f.stats.tasklets[0].instructions += 1;
    };
    DpuSet set(gridSystem(1, 1, ExecMode::Shadow), 1);
    const auto init = smallVecInit(p, 1);
    set.dpuAt(0).mram().write(0, init[0].data(), init[0].size());
    EXPECT_DEATH(
        set.launch(12, ck),
        "shadow-mode divergence: dpu 0.*vec-mul-modq.*"
        "tasklet 0: instructions interpreter=[0-9]+ fast=[0-9]+");
}

TEST(FastPathMismatchDeath, SkippedShardRowIsCaught)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto sp = convParamsFor<2>(16);
    const auto [b0, e0] = analysis::rowShardRange(16, 2, 0);
    sp.rowBegin = b0;
    sp.rowEnd = e0;
    sp.mramMeta = sp.mramOut + static_cast<std::uint64_t>(e0 - b0) *
                                   sp.accLimbs() * 4;
    CompiledKernel ck = compiledNegacyclicConv(sp);
    const auto base = ck.fast;
    // Deliberate bug: the fast body never computes the shard's final
    // row (its accumulator region keeps the pre-launch bytes).
    ck.fast = [base, sp](FastCtx &f) {
        const std::uint32_t acc_bytes = sp.accLimbs() * 4;
        std::uint32_t meta[2] = {0, sp.n};
        f.mram.read(sp.mramMeta, reinterpret_cast<std::uint8_t *>(meta),
                    8);
        const std::uint64_t last_row =
            sp.mramOut +
            static_cast<std::uint64_t>(meta[1] - meta[0] - 1) *
                acc_bytes;
        std::vector<std::uint8_t> saved(acc_bytes);
        f.mram.read(last_row, saved.data(), saved.size());
        base(f);
        f.mram.write(last_row, saved.data(), saved.size());
    };

    DpuSet set(gridSystem(2, 1, ExecMode::Shadow), 2);
    Rng rng(kSeed + 99);
    for (std::size_t d = 0; d < 2; ++d) {
        auto m = packedVec<2>(rng, sp.n);
        const auto b = packedVec<2>(rng, sp.n);
        m.resize(sp.mramB + b.size());
        std::memcpy(m.data() + sp.mramB, b.data(), b.size());
        const auto [rb, re] = analysis::rowShardRange(
            16, 2, static_cast<std::uint32_t>(d));
        m.resize(sp.mramMeta + 8);
        const std::uint32_t meta[2] = {rb, re};
        std::memcpy(m.data() + sp.mramMeta, meta, 8);
        set.dpuAt(d).mram().write(0, m.data(), m.size());
    }
    EXPECT_DEATH(
        set.launch(11, ck),
        "shadow-mode divergence: dpu 0.*negacyclic-conv-sharded.*"
        "output 'accumulators' diverges in mram bytes");
}

// ----- end to end: whole BFV pipelines under shadow mode -----

SystemConfig
shadowBfvSystem(std::size_t dpus)
{
    SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.verifyBeforeLaunch = true;
    cfg.hostThreads = 4;
    cfg.execMode = ExecMode::Shadow;
    cfg.dpu.checker.enabled = true;
    cfg.dpu.checker.failFast = true;
    return cfg;
}

TEST(FastPathEndToEnd, BfvPipelineShadowedWithDecryption)
{
    constexpr std::size_t N = 2;
    BfvHarness<N> h(32, kSeed + 7);
    PimHeSystem<N> pimsys(h.ctx, shadowBfvSystem(4), 4, 12);

    Rng rng(kSeed + 8);
    std::vector<Ciphertext<N>> a, b;
    std::vector<std::uint64_t> va, vb;
    for (int i = 0; i < 3; ++i) {
        va.push_back(rng.uniform(h.params.t));
        vb.push_back(rng.uniform(h.params.t));
        a.push_back(h.encryptScalar(va.back()));
        b.push_back(h.encryptScalar(vb.back()));
    }

    // Elementwise adds and coefficientwise products, shadowed.
    const auto sums = pimsys.addCiphertextVectors(a, b);
    for (int i = 0; i < 3; ++i) {
        const auto host = h.eval.add(a[i], b[i]);
        ASSERT_EQ(host.size(), sums[i].size());
        for (std::size_t c = 0; c < host.size(); ++c)
            ASSERT_TRUE(host[c] == sums[i][c]) << "add ct " << i;
        EXPECT_EQ(h.decryptScalar(sums[i]),
                  (va[i] + vb[i]) % h.params.t);
    }
    (void)pimsys.mulCoefficientwise(a, b);

    // Resident fused (x + y) * z and the tree reduction, shadowed.
    const auto ra = pimsys.makeResident(a[0]);
    const auto rb = pimsys.makeResident(b[0]);
    const auto rc = pimsys.makeResident(a[1]);
    const auto fused = pimsys.fusedAddMulResident(ra, rb, rc);
    (void)pimsys.materialize(fused);
    const auto reduced = pimsys.reduceCiphertexts(a);
    EXPECT_EQ(h.decryptScalar(reduced),
              (va[0] + va[1] + va[2]) % h.params.t);

    // Full BFV multiply through the shadowed PIM convolver.
    BfvContext<N> pim_ctx(h.params);
    pim_ctx.setConvolver(std::make_unique<PimConvolver<N>>(
        pim_ctx.ring(), shadowBfvSystem(2), 11));
    Evaluator<N> pim_eval(pim_ctx);
    const auto host_prod = h.eval.multiply(a[0], b[0]);
    const auto pim_prod = pim_eval.multiply(a[0], b[0]);
    ASSERT_EQ(host_prod.size(), pim_prod.size());
    for (std::size_t c = 0; c < host_prod.size(); ++c)
        ASSERT_TRUE(host_prod[c] == pim_prod[c]) << "multiply";
    EXPECT_EQ(h.decryptScalar(pim_prod), va[0] * vb[0] % h.params.t);
}

TEST(FastPathEndToEnd, FastModeMatchesHostEvaluator)
{
    constexpr std::size_t N = 4;
    BfvHarness<N> h(32, kSeed + 21);
    SystemConfig cfg = shadowBfvSystem(4);
    cfg.execMode = ExecMode::Fast;
    PimHeSystem<N> pimsys(h.ctx, cfg, 4, 12);

    Rng rng(kSeed + 22);
    std::vector<Ciphertext<N>> a, b;
    for (int i = 0; i < 3; ++i) {
        a.push_back(h.encryptScalar(rng.uniform(h.params.t)));
        b.push_back(h.encryptScalar(rng.uniform(h.params.t)));
    }
    const auto sums = pimsys.addCiphertextVectors(a, b);
    ASSERT_EQ(pimsys.lastLaunch().execMode, ExecMode::Fast);
    for (int i = 0; i < 3; ++i) {
        const auto host = h.eval.add(a[i], b[i]);
        for (std::size_t c = 0; c < host.size(); ++c)
            ASSERT_TRUE(host[c] == sums[i][c]) << "fast add ct " << i;
    }
}

} // namespace
} // namespace pimhe

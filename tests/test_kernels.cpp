/**
 * @file
 * DPU kernel tests: elementwise add/mul kernels and the negacyclic
 * convolution kernel, validated against host references across
 * widths, tasklet counts and awkward element counts.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "bfv/params.h"
#include "modular/barrett.h"
#include "pimhe/kernels.h"
#include "poly/convolver.h"
#include "test_util.h"

namespace pimhe {
namespace {

using namespace pimhe::pim;
using namespace pimhe::pimhe_kernels;
using pimhe::testing::kSeed;
using pimhe::testing::randomBelow;

template <std::size_t L>
VecKernelParams
makeVecParams(std::size_t elems)
{
    const auto q = standardParams<L>().q;
    VecKernelParams p;
    p.elems = static_cast<std::uint32_t>(elems);
    p.limbs = L;
    p.k = static_cast<std::uint32_t>(q.bitLength());
    p.c = static_cast<std::uint32_t>(
        (WideInt<L>::oneShl(p.k) - q).toUint64());
    for (std::size_t i = 0; i < L; ++i)
        p.q[i] = q.limb(i);
    const std::size_t arr = ((elems * L * 4 + 7) / 8) * 8;
    p.mramA = 0;
    p.mramB = arr;
    p.mramOut = 2 * arr;
    return p;
}

template <std::size_t L>
std::vector<WideInt<L>>
randomVec(Rng &rng, std::size_t elems)
{
    const auto q = standardParams<L>().q;
    std::vector<WideInt<L>> v(elems);
    for (auto &x : v)
        x = randomBelow<L>(rng, q);
    return v;
}

template <std::size_t L>
void
storeVec(Dpu &dpu, std::uint64_t addr,
         const std::vector<WideInt<L>> &v)
{
    std::vector<std::uint8_t> buf(((v.size() * L * 4 + 7) / 8) * 8, 0);
    for (std::size_t i = 0; i < v.size(); ++i)
        for (std::size_t l = 0; l < L; ++l) {
            const std::uint32_t limb = v[i].limb(l);
            std::memcpy(buf.data() + (i * L + l) * 4, &limb, 4);
        }
    dpu.mram().write(addr, buf.data(), buf.size());
}

template <std::size_t L>
std::vector<WideInt<L>>
loadVec(Dpu &dpu, std::uint64_t addr, std::size_t elems)
{
    std::vector<std::uint8_t> buf(elems * L * 4);
    dpu.mram().read(addr, buf.data(), buf.size());
    std::vector<WideInt<L>> v(elems);
    for (std::size_t i = 0; i < elems; ++i)
        for (std::size_t l = 0; l < L; ++l) {
            std::uint32_t limb;
            std::memcpy(&limb, buf.data() + (i * L + l) * 4, 4);
            v[i].setLimb(l, limb);
        }
    return v;
}

struct ShapeParam
{
    std::size_t elems;
    unsigned tasklets;
};

class VecKernelShapes
    : public ::testing::TestWithParam<ShapeParam>
{
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, VecKernelShapes,
    ::testing::Values(ShapeParam{1, 1}, ShapeParam{1, 12},
                      ShapeParam{7, 3}, ShapeParam{64, 12},
                      ShapeParam{129, 16}, ShapeParam{1000, 11},
                      ShapeParam{513, 24}),
    [](const auto &tpi) {
        return "e" + std::to_string(tpi.param.elems) + "t" +
               std::to_string(tpi.param.tasklets);
    });

TEST_P(VecKernelShapes, AddKernelMatchesBarrett128)
{
    constexpr std::size_t L = 4;
    const auto [elems, tasklets] = GetParam();
    const auto q = standardParams<L>().q;
    const BarrettReducer<L> red(q);
    Rng rng(kSeed + elems);
    const auto a = randomVec<L>(rng, elems);
    const auto b = randomVec<L>(rng, elems);

    Dpu dpu(DpuConfig{});
    const auto p = makeVecParams<L>(elems);
    storeVec(dpu, p.mramA, a);
    storeVec(dpu, p.mramB, b);
    dpu.run(tasklets, makeVecAddModQKernel(p));
    const auto out = loadVec<L>(dpu, p.mramOut, elems);
    for (std::size_t i = 0; i < elems; ++i)
        EXPECT_EQ(out[i], red.addMod(a[i], b[i])) << "elem " << i;
}

TEST_P(VecKernelShapes, MulKernelMatchesBarrett128)
{
    constexpr std::size_t L = 4;
    const auto [elems, tasklets] = GetParam();
    const auto q = standardParams<L>().q;
    const BarrettReducer<L> red(q);
    Rng rng(kSeed + 31 + elems);
    const auto a = randomVec<L>(rng, elems);
    const auto b = randomVec<L>(rng, elems);

    Dpu dpu(DpuConfig{});
    const auto p = makeVecParams<L>(elems);
    storeVec(dpu, p.mramA, a);
    storeVec(dpu, p.mramB, b);
    dpu.run(tasklets, makeVecMulModQKernel(p));
    const auto out = loadVec<L>(dpu, p.mramOut, elems);
    for (std::size_t i = 0; i < elems; ++i)
        EXPECT_EQ(out[i], red.mulMod(a[i], b[i])) << "elem " << i;
}

template <typename T>
class KernelWidths : public ::testing::Test
{
};

using KWidths = ::testing::Types<WideInt<1>, WideInt<2>, WideInt<4>>;
TYPED_TEST_SUITE(KernelWidths, KWidths);

TYPED_TEST(KernelWidths, AddAndMulKernelsAllWidths)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    const std::size_t elems = 93;
    const auto q = standardParams<L>().q;
    const BarrettReducer<L> red(q);
    Rng rng(kSeed + 7 * L);
    const auto a = randomVec<L>(rng, elems);
    const auto b = randomVec<L>(rng, elems);

    Dpu dpu(DpuConfig{});
    const auto p = makeVecParams<L>(elems);
    storeVec(dpu, p.mramA, a);
    storeVec(dpu, p.mramB, b);
    dpu.run(12, makeVecAddModQKernel(p));
    auto out = loadVec<L>(dpu, p.mramOut, elems);
    for (std::size_t i = 0; i < elems; ++i)
        EXPECT_EQ(out[i], red.addMod(a[i], b[i]));

    dpu.run(12, makeVecMulModQKernel(p));
    out = loadVec<L>(dpu, p.mramOut, elems);
    for (std::size_t i = 0; i < elems; ++i)
        EXPECT_EQ(out[i], red.mulMod(a[i], b[i]));
}

TYPED_TEST(KernelWidths, KernelInstructionCountIsDataIndependent)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    const std::size_t elems = 40;
    Rng rng(kSeed + 9 * L);
    std::uint64_t expected = 0;
    for (int it = 0; it < 5; ++it) {
        Dpu dpu(DpuConfig{});
        const auto p = makeVecParams<L>(elems);
        storeVec(dpu, p.mramA, randomVec<L>(rng, elems));
        storeVec(dpu, p.mramB, randomVec<L>(rng, elems));
        const auto stats = dpu.run(12, makeVecMulModQKernel(p));
        if (it == 0)
            expected = stats.totalInstructions();
        else
            ASSERT_EQ(stats.totalInstructions(), expected);
    }
}

// ----- negacyclic convolution kernel -----

template <std::size_t L>
ConvKernelParams
makeConvParams(std::size_t n)
{
    const auto q = standardParams<L>().q;
    ConvKernelParams p;
    p.n = static_cast<std::uint32_t>(n);
    p.limbs = L;
    for (std::size_t i = 0; i < L; ++i)
        p.q[i] = q.limb(i);
    const auto half = q.shr(1);
    for (std::size_t i = 0; i < L; ++i)
        p.halfQ[i] = half.limb(i);
    p.mramA = 0;
    p.mramB = n * L * 4;
    p.mramOut = 2 * n * L * 4;
    return p;
}

TYPED_TEST(KernelWidths, ConvolutionMatchesSchoolbookConvolver)
{
    constexpr std::size_t L = TypeParam::numLimbs;
    const std::size_t n = 32;
    const auto params = standardParams<L>().withDegree(n);
    RingContext<L> ring(n, params.q);
    const SchoolbookConvolver<L> ref(ring);
    Rng rng(kSeed + 13 * L);
    const auto a = ring.sampleUniform(rng);
    const auto b = ring.sampleUniform(rng);

    Dpu dpu(DpuConfig{});
    const auto p = makeConvParams<L>(n);
    storeVec(dpu, p.mramA, a.coeffs());
    storeVec(dpu, p.mramB, b.coeffs());
    dpu.run(12, makeNegacyclicConvKernel(p));

    const auto expect = ref.convolveCentered(a, b);
    const std::size_t acc_limbs = p.accLimbs();
    std::vector<std::uint8_t> buf(n * acc_limbs * 4);
    dpu.mram().read(p.mramOut, buf.data(), buf.size());
    for (std::size_t i = 0; i < n; ++i) {
        U256 v;
        std::uint32_t top = 0;
        const std::size_t read = std::min<std::size_t>(acc_limbs, 8);
        for (std::size_t l = 0; l < read; ++l) {
            std::memcpy(&top, buf.data() + (i * acc_limbs + l) * 4, 4);
            v.setLimb(l, top);
        }
        if (top & 0x80000000u)
            for (std::size_t l = read; l < 8; ++l)
                v.setLimb(l, 0xFFFFFFFFu);
        EXPECT_EQ(v, expect[i]) << "coeff " << i;
    }
}

TEST(ConvKernel, VariousTaskletCounts)
{
    constexpr std::size_t L = 2;
    const std::size_t n = 16;
    const auto params = standardParams<L>().withDegree(n);
    RingContext<L> ring(n, params.q);
    const SchoolbookConvolver<L> ref(ring);
    Rng rng(kSeed + 99);
    const auto a = ring.sampleUniform(rng);
    const auto b = ring.sampleUniform(rng);
    const auto expect = ref.convolveCentered(a, b);

    for (unsigned tasklets : {1u, 3u, 11u, 16u}) {
        Dpu dpu(DpuConfig{});
        const auto p = makeConvParams<L>(n);
        storeVec(dpu, p.mramA, a.coeffs());
        storeVec(dpu, p.mramB, b.coeffs());
        dpu.run(tasklets, makeNegacyclicConvKernel(p));
        const std::size_t acc_limbs = p.accLimbs();
        std::vector<std::uint8_t> buf(n * acc_limbs * 4);
        dpu.mram().read(p.mramOut, buf.data(), buf.size());
        for (std::size_t i = 0; i < n; ++i) {
            U256 v;
            std::uint32_t top = 0;
            for (std::size_t l = 0; l < acc_limbs && l < 8; ++l) {
                std::memcpy(&top,
                            buf.data() + (i * acc_limbs + l) * 4, 4);
                v.setLimb(l, top);
            }
            if (top & 0x80000000u)
                for (std::size_t l = acc_limbs; l < 8; ++l)
                    v.setLimb(l, 0xFFFFFFFFu);
            EXPECT_EQ(v, expect[i])
                << "tasklets " << tasklets << " coeff " << i;
        }
    }
}

TEST(ConvKernel, RejectsOversizedPolynomials)
{
    // 2 polys x 8192 x 16 bytes overflows the 64 KB WRAM.
    constexpr std::size_t L = 4;
    Dpu dpu(DpuConfig{});
    auto p = makeConvParams<L>(8192);
    std::vector<std::uint8_t> zeros(8192 * L * 4, 0);
    dpu.mram().write(p.mramA, zeros.data(), zeros.size());
    dpu.mram().write(p.mramB, zeros.data(), zeros.size());
    EXPECT_DEATH(dpu.run(12, makeNegacyclicConvKernel(p)),
                 "do not fit in WRAM");
}

TEST(KernelHelpers, TaskletRangePartitionsExactly)
{
    for (std::uint32_t elems : {0u, 1u, 7u, 12u, 100u, 1001u}) {
        for (unsigned tasklets : {1u, 3u, 12u, 24u}) {
            std::uint32_t covered = 0;
            std::uint32_t prev_end = 0;
            for (unsigned t = 0; t < tasklets; ++t) {
                const auto [begin, end] =
                    taskletRange(elems, t, tasklets);
                EXPECT_EQ(begin, prev_end) << "gap before tasklet "
                                           << t;
                EXPECT_LE(end - begin,
                          elems / tasklets + 1);
                covered += end - begin;
                prev_end = end;
            }
            EXPECT_EQ(covered, elems);
            EXPECT_EQ(prev_end, elems);
        }
    }
}

TEST(KernelHelpers, WramChunkBytesRespectsBudget)
{
    DpuConfig cfg;
    for (unsigned t : {1u, 8u, 12u, 16u, 24u}) {
        const auto bytes = wramChunkBytes(cfg, t);
        EXPECT_GE(bytes, 8u);
        EXPECT_LE(bytes, 2048u);
        EXPECT_LE(3u * t * bytes, cfg.wramBytes)
            << "three buffers per tasklet must fit WRAM";
        EXPECT_EQ(bytes & (bytes - 1), 0u) << "power of two";
    }
}

} // namespace
} // namespace pimhe

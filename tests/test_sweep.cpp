/**
 * @file
 * Cross-product sweep through the full PIM-HE path: every width x
 * system shape x tasklet count combination must keep
 * encrypt -> PIM op -> decrypt exact and bit-identical with the host
 * evaluator. This is the repository's widest integration net.
 */

#include <gtest/gtest.h>

#include "pimhe/orchestrator.h"
#include "test_util.h"

namespace pimhe {
namespace {

using pimhe::testing::BfvHarness;
using pimhe::testing::kSeed;

struct SweepShape
{
    std::size_t dpus;
    unsigned tasklets;
    std::size_t cts;
};

class PimSweep : public ::testing::TestWithParam<SweepShape>
{
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, PimSweep,
    ::testing::Values(SweepShape{1, 1, 1}, SweepShape{1, 11, 3},
                      SweepShape{2, 12, 2}, SweepShape{3, 8, 7},
                      SweepShape{5, 16, 4}, SweepShape{7, 24, 9},
                      SweepShape{8, 2, 8}, SweepShape{13, 12, 5}),
    [](const auto &tpi) {
        return "d" + std::to_string(tpi.param.dpus) + "t" +
               std::to_string(tpi.param.tasklets) + "c" +
               std::to_string(tpi.param.cts);
    });

template <std::size_t N>
void
sweepOnce(const SweepShape &shape)
{
    BfvHarness<N> h(16, kSeed + shape.dpus * 131 + shape.tasklets);
    pim::SystemConfig cfg;
    cfg.numDpus = shape.dpus;
    cfg.verifyBeforeLaunch = true;
    PimHeSystem<N> server(h.ctx, cfg, shape.dpus, shape.tasklets);

    std::vector<Ciphertext<N>> as, bs;
    std::vector<std::uint64_t> va, vb;
    Rng vals(kSeed + shape.cts);
    for (std::size_t i = 0; i < shape.cts; ++i) {
        va.push_back(vals.uniform(h.params.t));
        vb.push_back(vals.uniform(h.params.t));
        as.push_back(h.encryptScalar(va.back()));
        bs.push_back(h.encryptScalar(vb.back()));
    }

    // Addition: decrypts correctly and matches the host evaluator
    // bit for bit.
    const auto sums = server.addCiphertextVectors(as, bs);
    for (std::size_t i = 0; i < shape.cts; ++i) {
        EXPECT_EQ(h.decryptScalar(sums[i]),
                  (va[i] + vb[i]) % h.params.t)
            << "ct " << i;
        const auto host = h.eval.add(as[i], bs[i]);
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_TRUE(host[c] == sums[i][c]) << "ct " << i;
    }

    // Coefficientwise multiplication matches the Barrett reference.
    const auto prods = server.mulCoefficientwise(as, bs);
    const auto &red = h.ctx.ring().reducer();
    for (std::size_t i = 0; i < shape.cts; ++i)
        for (std::size_t c = 0; c < 2; ++c)
            for (std::size_t j = 0; j < h.params.n; ++j)
                EXPECT_EQ(prods[i][c][j],
                          red.mulMod(as[i][c][j], bs[i][c][j]))
                    << "ct " << i << " comp " << c << " coeff " << j;

    // Reduction of the whole vector.
    std::uint64_t total = 0;
    for (const auto v : va)
        total += v;
    EXPECT_EQ(h.decryptScalar(server.reduceCiphertexts(as)),
              total % h.params.t);
}

TEST_P(PimSweep, Width32)
{
    sweepOnce<1>(GetParam());
}

TEST_P(PimSweep, Width64)
{
    sweepOnce<2>(GetParam());
}

TEST_P(PimSweep, Width128)
{
    sweepOnce<4>(GetParam());
}

} // namespace
} // namespace pimhe

# Empty dependencies file for encrypted_regression.
# This may be replaced when dependencies are built.

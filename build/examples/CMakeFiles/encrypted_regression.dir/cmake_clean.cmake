file(REMOVE_RECURSE
  "CMakeFiles/encrypted_regression.dir/encrypted_regression.cpp.o"
  "CMakeFiles/encrypted_regression.dir/encrypted_regression.cpp.o.d"
  "encrypted_regression"
  "encrypted_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/secure_survey.dir/secure_survey.cpp.o"
  "CMakeFiles/secure_survey.dir/secure_survey.cpp.o.d"
  "secure_survey"
  "secure_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

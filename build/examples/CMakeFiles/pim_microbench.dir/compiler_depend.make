# Empty compiler generated dependencies file for pim_microbench.
# This may be replaced when dependencies are built.

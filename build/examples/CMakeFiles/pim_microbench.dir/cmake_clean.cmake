file(REMOVE_RECURSE
  "CMakeFiles/pim_microbench.dir/pim_microbench.cpp.o"
  "CMakeFiles/pim_microbench.dir/pim_microbench.cpp.o.d"
  "pim_microbench"
  "pim_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_pim_sim.dir/test_pim_sim.cpp.o"
  "CMakeFiles/test_pim_sim.dir/test_pim_sim.cpp.o.d"
  "test_pim_sim"
  "test_pim_sim.pdb"
  "test_pim_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_pim_sim.
# This may be replaced when dependencies are built.

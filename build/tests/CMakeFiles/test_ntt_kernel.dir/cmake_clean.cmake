file(REMOVE_RECURSE
  "CMakeFiles/test_ntt_kernel.dir/test_ntt_kernel.cpp.o"
  "CMakeFiles/test_ntt_kernel.dir/test_ntt_kernel.cpp.o.d"
  "test_ntt_kernel"
  "test_ntt_kernel.pdb"
  "test_ntt_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntt_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_ntt_kernel.
# This may be replaced when dependencies are built.

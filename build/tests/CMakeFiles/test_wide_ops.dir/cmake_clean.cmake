file(REMOVE_RECURSE
  "CMakeFiles/test_wide_ops.dir/test_wide_ops.cpp.o"
  "CMakeFiles/test_wide_ops.dir/test_wide_ops.cpp.o.d"
  "test_wide_ops"
  "test_wide_ops.pdb"
  "test_wide_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wide_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_wide_ops.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_perf_models.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_perf_models.dir/test_perf_models.cpp.o"
  "CMakeFiles/test_perf_models.dir/test_perf_models.cpp.o.d"
  "test_perf_models"
  "test_perf_models.pdb"
  "test_perf_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

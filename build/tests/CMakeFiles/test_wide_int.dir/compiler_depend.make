# Empty compiler generated dependencies file for test_wide_int.
# This may be replaced when dependencies are built.

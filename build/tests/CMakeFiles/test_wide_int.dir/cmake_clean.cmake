file(REMOVE_RECURSE
  "CMakeFiles/test_wide_int.dir/test_wide_int.cpp.o"
  "CMakeFiles/test_wide_int.dir/test_wide_int.cpp.o.d"
  "test_wide_int"
  "test_wide_int.pdb"
  "test_wide_int[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wide_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_bfv.dir/test_bfv.cpp.o"
  "CMakeFiles/test_bfv.dir/test_bfv.cpp.o.d"
  "test_bfv"
  "test_bfv.pdb"
  "test_bfv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

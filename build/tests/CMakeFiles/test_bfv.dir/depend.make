# Empty dependencies file for test_bfv.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bfv[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_modular[1]_include.cmake")
include("/root/repo/build/tests/test_ntt[1]_include.cmake")
include("/root/repo/build/tests/test_ntt_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_orchestrator[1]_include.cmake")
include("/root/repo/build/tests/test_perf_models[1]_include.cmake")
include("/root/repo/build/tests/test_pim_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ring[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_wide_int[1]_include.cmake")
include("/root/repo/build/tests/test_wide_ops[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")

file(REMOVE_RECURSE
  "libpimhe_modular.a"
)

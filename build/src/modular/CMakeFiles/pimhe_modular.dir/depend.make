# Empty dependencies file for pimhe_modular.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pimhe_modular.dir/mod64.cpp.o"
  "CMakeFiles/pimhe_modular.dir/mod64.cpp.o.d"
  "libpimhe_modular.a"
  "libpimhe_modular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimhe_modular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

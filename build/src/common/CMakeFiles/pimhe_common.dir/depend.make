# Empty dependencies file for pimhe_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pimhe_common.dir/cli.cpp.o"
  "CMakeFiles/pimhe_common.dir/cli.cpp.o.d"
  "CMakeFiles/pimhe_common.dir/logging.cpp.o"
  "CMakeFiles/pimhe_common.dir/logging.cpp.o.d"
  "CMakeFiles/pimhe_common.dir/rng.cpp.o"
  "CMakeFiles/pimhe_common.dir/rng.cpp.o.d"
  "CMakeFiles/pimhe_common.dir/table.cpp.o"
  "CMakeFiles/pimhe_common.dir/table.cpp.o.d"
  "libpimhe_common.a"
  "libpimhe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimhe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpimhe_common.a"
)

file(REMOVE_RECURSE
  "libpimhe_ntt.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pimhe_ntt.dir/ntt.cpp.o"
  "CMakeFiles/pimhe_ntt.dir/ntt.cpp.o.d"
  "CMakeFiles/pimhe_ntt.dir/rns.cpp.o"
  "CMakeFiles/pimhe_ntt.dir/rns.cpp.o.d"
  "libpimhe_ntt.a"
  "libpimhe_ntt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimhe_ntt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

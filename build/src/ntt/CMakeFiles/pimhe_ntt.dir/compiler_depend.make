# Empty compiler generated dependencies file for pimhe_ntt.
# This may be replaced when dependencies are built.

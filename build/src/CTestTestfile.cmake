# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("bigint")
subdirs("modular")
subdirs("poly")
subdirs("ntt")
subdirs("bfv")
subdirs("pim")
subdirs("pimhe")
subdirs("perf")
subdirs("baselines")
subdirs("workloads")

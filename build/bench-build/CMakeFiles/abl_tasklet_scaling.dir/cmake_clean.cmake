file(REMOVE_RECURSE
  "../bench/abl_tasklet_scaling"
  "../bench/abl_tasklet_scaling.pdb"
  "CMakeFiles/abl_tasklet_scaling.dir/abl_tasklet_scaling.cpp.o"
  "CMakeFiles/abl_tasklet_scaling.dir/abl_tasklet_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tasklet_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_tasklet_scaling.
# This may be replaced when dependencies are built.

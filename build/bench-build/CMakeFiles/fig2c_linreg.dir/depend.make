# Empty dependencies file for fig2c_linreg.
# This may be replaced when dependencies are built.

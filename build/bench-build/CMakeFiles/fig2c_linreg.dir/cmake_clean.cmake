file(REMOVE_RECURSE
  "../bench/fig2c_linreg"
  "../bench/fig2c_linreg.pdb"
  "CMakeFiles/fig2c_linreg.dir/fig2c_linreg.cpp.o"
  "CMakeFiles/fig2c_linreg.dir/fig2c_linreg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_linreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

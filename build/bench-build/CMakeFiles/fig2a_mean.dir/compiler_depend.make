# Empty compiler generated dependencies file for fig2a_mean.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig2a_mean"
  "../bench/fig2a_mean.pdb"
  "CMakeFiles/fig2a_mean.dir/fig2a_mean.cpp.o"
  "CMakeFiles/fig2a_mean.dir/fig2a_mean.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

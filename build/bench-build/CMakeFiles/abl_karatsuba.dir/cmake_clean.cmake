file(REMOVE_RECURSE
  "../bench/abl_karatsuba"
  "../bench/abl_karatsuba.pdb"
  "CMakeFiles/abl_karatsuba.dir/abl_karatsuba.cpp.o"
  "CMakeFiles/abl_karatsuba.dir/abl_karatsuba.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_karatsuba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

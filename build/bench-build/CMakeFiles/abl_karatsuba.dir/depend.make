# Empty dependencies file for abl_karatsuba.
# This may be replaced when dependencies are built.

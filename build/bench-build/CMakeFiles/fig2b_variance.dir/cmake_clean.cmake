file(REMOVE_RECURSE
  "../bench/fig2b_variance"
  "../bench/fig2b_variance.pdb"
  "CMakeFiles/fig2b_variance.dir/fig2b_variance.cpp.o"
  "CMakeFiles/fig2b_variance.dir/fig2b_variance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

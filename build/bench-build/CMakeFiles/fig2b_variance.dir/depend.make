# Empty dependencies file for fig2b_variance.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_capacity_scaling.
# This may be replaced when dependencies are built.

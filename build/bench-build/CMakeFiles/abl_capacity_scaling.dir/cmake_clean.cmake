file(REMOVE_RECURSE
  "../bench/abl_capacity_scaling"
  "../bench/abl_capacity_scaling.pdb"
  "CMakeFiles/abl_capacity_scaling.dir/abl_capacity_scaling.cpp.o"
  "CMakeFiles/abl_capacity_scaling.dir/abl_capacity_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_capacity_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

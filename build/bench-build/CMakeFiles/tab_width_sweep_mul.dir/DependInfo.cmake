
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_width_sweep_mul.cpp" "bench-build/CMakeFiles/tab_width_sweep_mul.dir/tab_width_sweep_mul.cpp.o" "gcc" "bench-build/CMakeFiles/tab_width_sweep_mul.dir/tab_width_sweep_mul.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ntt/CMakeFiles/pimhe_ntt.dir/DependInfo.cmake"
  "/root/repo/build/src/modular/CMakeFiles/pimhe_modular.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pimhe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "../bench/tab_width_sweep_mul"
  "../bench/tab_width_sweep_mul.pdb"
  "CMakeFiles/tab_width_sweep_mul.dir/tab_width_sweep_mul.cpp.o"
  "CMakeFiles/tab_width_sweep_mul.dir/tab_width_sweep_mul.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_width_sweep_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tab_width_sweep_mul.
# This may be replaced when dependencies are built.

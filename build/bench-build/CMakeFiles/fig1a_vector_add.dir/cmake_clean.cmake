file(REMOVE_RECURSE
  "../bench/fig1a_vector_add"
  "../bench/fig1a_vector_add.pdb"
  "CMakeFiles/fig1a_vector_add.dir/fig1a_vector_add.cpp.o"
  "CMakeFiles/fig1a_vector_add.dir/fig1a_vector_add.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_vector_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

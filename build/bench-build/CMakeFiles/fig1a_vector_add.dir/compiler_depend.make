# Empty compiler generated dependencies file for fig1a_vector_add.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig1b_vector_mul.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig1b_vector_mul"
  "../bench/fig1b_vector_mul.pdb"
  "CMakeFiles/fig1b_vector_mul.dir/fig1b_vector_mul.cpp.o"
  "CMakeFiles/fig1b_vector_mul.dir/fig1b_vector_mul.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_vector_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_ntt_on_pim.
# This may be replaced when dependencies are built.

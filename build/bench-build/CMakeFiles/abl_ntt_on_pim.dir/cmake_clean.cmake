file(REMOVE_RECURSE
  "../bench/abl_ntt_on_pim"
  "../bench/abl_ntt_on_pim.pdb"
  "CMakeFiles/abl_ntt_on_pim.dir/abl_ntt_on_pim.cpp.o"
  "CMakeFiles/abl_ntt_on_pim.dir/abl_ntt_on_pim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ntt_on_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/tab_width_sweep_add"
  "../bench/tab_width_sweep_add.pdb"
  "CMakeFiles/tab_width_sweep_add.dir/tab_width_sweep_add.cpp.o"
  "CMakeFiles/tab_width_sweep_add.dir/tab_width_sweep_add.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_width_sweep_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

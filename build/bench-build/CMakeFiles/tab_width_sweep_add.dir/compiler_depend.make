# Empty compiler generated dependencies file for tab_width_sweep_add.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abl_native_mul.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/abl_native_mul"
  "../bench/abl_native_mul.pdb"
  "CMakeFiles/abl_native_mul.dir/abl_native_mul.cpp.o"
  "CMakeFiles/abl_native_mul.dir/abl_native_mul.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_native_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
